// MPB layout shared by the RCCE-family communication layers.
//
// Each core's 8 KB MPB is divided into:
//   [ flag lines: one 32-byte line per remote writer ][ payload chunk ]
//
// Giving every potential writer its own line keeps flag writes free of
// read-modify-write races at line granularity (the write-combining buffer
// moves whole lines), mirroring RCCE's one-line-per-flag allocation.
// Flag *indices* map into the machine's FlagFile:
//   sent(from)    -- writer `from` staged a message for me
//   ready(from)   -- writer `from` consumed the message I staged
//   barrier(r)    -- dissemination-barrier round r (single writer each)
//   mpb_filled(b)/mpb_free(b) -- MPB-direct Allreduce double buffering
#pragma once

#include <cstddef>

#include "common/contracts.hpp"
#include "machine/flags.hpp"
#include "mem/cost_model.hpp"

namespace scc::rcce {

class Layout {
 public:
  explicit Layout(int num_cores,
                  std::size_t mpb_bytes = mem::kMpbBytesPerCore)
      : num_cores_(num_cores), mpb_bytes_(mpb_bytes) {
    SCC_EXPECTS(num_cores > 0);
    SCC_EXPECTS(payload_bytes() >= mem::kCacheLineBytes);
  }

  [[nodiscard]] int num_cores() const { return num_cores_; }

  // --- flag indices ------------------------------------------------------
  [[nodiscard]] machine::FlagRef sent_flag(int at_core, int from) const {
    check_core(at_core);
    check_core(from);
    return {at_core, from};
  }
  [[nodiscard]] machine::FlagRef ready_flag(int at_core, int from) const {
    check_core(at_core);
    check_core(from);
    return {at_core, num_cores_ + from};
  }
  [[nodiscard]] machine::FlagRef barrier_flag(int at_core, int round) const {
    check_core(at_core);
    SCC_EXPECTS(round >= 0 && round < 14);
    return {at_core, 2 * num_cores_ + round};
  }
  /// Double-buffer handshake for the MPB-direct Allreduce: `filled` is set
  /// by the left ring neighbour, `free` by the right one -- single writer
  /// per flag either way.
  [[nodiscard]] machine::FlagRef mpb_filled_flag(int at_core, int buf) const {
    check_core(at_core);
    SCC_EXPECTS(buf == 0 || buf == 1);
    return {at_core, 2 * num_cores_ + 14 + buf};
  }
  [[nodiscard]] machine::FlagRef mpb_free_flag(int at_core, int buf) const {
    check_core(at_core);
    SCC_EXPECTS(buf == 0 || buf == 1);
    return {at_core, 2 * num_cores_ + 16 + buf};
  }
  /// Number of flag slots this layout requires per core.
  [[nodiscard]] int flags_needed() const { return 2 * num_cores_ + 18; }

  // --- payload ------------------------------------------------------------
  /// One reserved line per remote writer precedes the payload.
  [[nodiscard]] std::size_t payload_offset() const {
    return static_cast<std::size_t>(num_cores_) * mem::kCacheLineBytes;
  }
  [[nodiscard]] std::size_t payload_bytes() const {
    SCC_EXPECTS(mpb_bytes_ > payload_offset());
    return mpb_bytes_ - payload_offset();
  }
  /// Largest message staged in one piece (RCCE chunk size).
  [[nodiscard]] std::size_t chunk_bytes() const { return payload_bytes(); }

  [[nodiscard]] mem::MpbAddr payload_addr(int core,
                                          std::size_t offset = 0) const {
    check_core(core);
    SCC_EXPECTS(offset < payload_bytes());
    return {core, payload_offset() + offset};
  }

 private:
  void check_core(int core) const {
    SCC_EXPECTS(core >= 0 && core < num_cores_);
  }

  int num_cores_;
  std::size_t mpb_bytes_;
};

}  // namespace scc::rcce
