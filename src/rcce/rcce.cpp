#include "rcce/rcce.hpp"

#include <algorithm>

#include "common/aligned.hpp"
#include "rcce/protocol.hpp"

namespace scc::rcce {

sim::Task<> Rcce::send(std::span<const std::byte> data, int dest) {
  SCC_EXPECTS(dest >= 0 && dest < num_cores());
  SCC_EXPECTS(dest != rank());
  co_await api_->overhead(api_->cost().sw.rcce_send_call);
  co_await api_->wait_poll(api_->cost().sw.rcce_wait_until_poll,
                           api_->cost().sw.rcce_send_call);
  const std::size_t chunk_bytes = layout_->chunk_bytes();
  std::size_t done = 0;
  do {
    const std::size_t len = std::min(chunk_bytes, data.size() - done);
    co_await stage_and_signal(*api_, *layout_, data.subspan(done, len), dest);
    co_await await_ack(*api_, *layout_, dest);
    done += len;
  } while (done < data.size());
}

sim::Task<> Rcce::recv(std::span<std::byte> data, int src) {
  SCC_EXPECTS(src >= 0 && src < num_cores());
  SCC_EXPECTS(src != rank());
  co_await api_->overhead(api_->cost().sw.rcce_recv_call);
  co_await api_->wait_poll(api_->cost().sw.rcce_wait_until_poll,
                           api_->cost().sw.rcce_recv_call);
  const std::size_t chunk_bytes = layout_->chunk_bytes();
  std::size_t done = 0;
  do {
    const std::size_t len = std::min(chunk_bytes, data.size() - done);
    co_await await_and_fetch(*api_, *layout_, data.subspan(done, len), src);
    co_await ack_sender(*api_, *layout_, src);
    done += len;
  } while (done < data.size());
}

sim::Task<> Rcce::put(std::span<const std::byte> data, int dest_core,
                      std::size_t payload_offset) {
  co_await api_->priv_read(data.data(), data.size());
  co_await api_->mpb_put(layout_->payload_addr(dest_core, payload_offset),
                         data);
}

sim::Task<> Rcce::get(std::span<std::byte> data, int src_core,
                      std::size_t payload_offset) {
  co_await api_->mpb_get(layout_->payload_addr(src_core, payload_offset),
                         data);
  co_await api_->priv_write(data.data(), data.size());
}

sim::Task<> Rcce::barrier() {
  const int p = num_cores();
  const int self = rank();
  // Per-object epoch distinguishes consecutive barriers; wraps inside the
  // 8-bit flag range, skipping the initial value 0.
  barrier_epoch_ = static_cast<std::uint8_t>(barrier_epoch_ % 255 + 1);
  for (int dist = 1; dist < p; dist *= 2) {
    const int round = [&] {
      int r = 0;
      for (int d = 1; d < dist; d *= 2) ++r;
      return r;
    }();
    const int partner = (self + dist) % p;
    co_await api_->flag_set(layout_->barrier_flag(partner, round),
                            barrier_epoch_);
    co_await api_->flag_wait(layout_->barrier_flag(self, round),
                             barrier_epoch_);
  }
}

sim::Task<> Rcce::bcast_naive(std::span<std::byte> data, int root) {
  if (rank() == root) {
    for (int peer = 0; peer < num_cores(); ++peer) {
      if (peer == root) continue;
      co_await send(data, peer);
    }
  } else {
    co_await recv(data, root);
  }
}

sim::Task<> Rcce::reduce_naive(std::span<const double> in,
                               std::span<double> out, ReduceOp op, int root,
                               bool all) {
  SCC_EXPECTS(in.size() == out.size());
  const auto bytes = [](std::span<double> s) {
    return std::as_writable_bytes(s);
  };
  if (rank() == root) {
    std::copy(in.begin(), in.end(), out.begin());
    co_await api_->priv_read(in.data(), in.size_bytes());
    co_await api_->priv_write(out.data(), out.size_bytes());
    aligned_vector<double> tmp(in.size());
    for (int peer = 0; peer < num_cores(); ++peer) {
      if (peer == root) continue;
      co_await recv(bytes(tmp), peer);
      co_await apply_reduce(*api_, tmp, out, op);
    }
    if (all) {
      for (int peer = 0; peer < num_cores(); ++peer) {
        if (peer == root) continue;
        co_await send(std::as_bytes(out), peer);
      }
    }
  } else {
    co_await send(std::as_bytes(in), root);
    if (all) co_await recv(bytes(out), root);
  }
}

sim::Task<> apply_reduce(machine::CoreApi& api, std::span<const double> value,
                         std::span<double> acc, ReduceOp op) {
  SCC_EXPECTS(value.size() == acc.size());
  if (value.empty()) co_return;
  co_await api.priv_read(value.data(), value.size_bytes());
  co_await api.priv_read(acc.data(), acc.size_bytes());
  switch (op) {
    case ReduceOp::kSum:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += value[i];
      break;
    case ReduceOp::kMax:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::max(acc[i], value[i]);
      break;
    case ReduceOp::kMin:
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = std::min(acc[i], value[i]);
      break;
    case ReduceOp::kProd:
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] *= value[i];
      break;
  }
  co_await api.compute(value.size() * api.cost().sw.reduce_cycles_per_element);
  co_await api.priv_write(acc.data(), acc.size_bytes());
}

}  // namespace scc::rcce
