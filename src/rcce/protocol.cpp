#include "rcce/protocol.hpp"

#include "mem/latency.hpp"

namespace scc::rcce {

sim::Task<> stage_and_signal(machine::CoreApi& api, const Layout& layout,
                             std::span<const std::byte> chunk, int dest,
                             std::size_t payload_offset) {
  const int self = api.rank();
  if (!chunk.empty()) {
    // Load the user data (cacheable private memory) ...
    co_await api.priv_read(chunk.data(), chunk.size());
    // ... and stage it into the local MPB through the write-combining
    // buffer.
    co_await api.mpb_put(layout.payload_addr(self, payload_offset), chunk);
    if (mem::has_partial_line(chunk.size())) {
      co_await api.overhead(api.cost().sw.rcce_partial_line_call);
    }
  }
  co_await api.flag_set(layout.sent_flag(dest, self), 1);
}

sim::Task<> await_ack(machine::CoreApi& api, const Layout& layout, int dest) {
  const int self = api.rank();
  co_await api.flag_wait(layout.ready_flag(self, dest), 1);
  co_await api.flag_set(layout.ready_flag(self, dest), 0);
}

sim::Task<> await_and_fetch(machine::CoreApi& api, const Layout& layout,
                            std::span<std::byte> chunk, int src,
                            std::size_t payload_offset) {
  const int self = api.rank();
  co_await api.flag_wait(layout.sent_flag(self, src), 1);
  co_await api.flag_set(layout.sent_flag(self, src), 0);
  if (!chunk.empty()) {
    co_await api.mpb_get(layout.payload_addr(src, payload_offset), chunk);
    if (mem::has_partial_line(chunk.size())) {
      co_await api.overhead(api.cost().sw.rcce_partial_line_call);
    }
    // Store into the user buffer (cacheable private memory).
    co_await api.priv_write(chunk.data(), chunk.size());
  }
}

sim::Task<> ack_sender(machine::CoreApi& api, const Layout& layout, int src) {
  co_await api.flag_set(layout.ready_flag(src, api.rank()), 1);
}

bool sent_is_up(machine::CoreApi& api, const Layout& layout, int src) {
  return api.flag_peek(layout.sent_flag(api.rank(), src)) != 0;
}

sim::Task<> complete_exchange(machine::CoreApi& api, const Layout& layout,
                              std::span<const std::byte> sdata,
                              std::size_t staged, int dest,
                              std::span<std::byte> rdata, int src,
                              std::uint64_t poll_cycles) {
  const int self = api.rank();
  std::size_t sdone = staged;
  std::size_t rdone = 0;
  bool recv_pending = true;  // >= one handshake even for an empty message
  bool send_pending = true;  // the pre-staged chunk is awaiting its ack
  while (recv_pending || send_pending) {
    bool progressed = false;
    if (recv_pending && sent_is_up(api, layout, src)) {
      const std::size_t len =
          std::min(layout.chunk_bytes(), rdata.size() - rdone);
      co_await await_and_fetch(api, layout, rdata.subspan(rdone, len), src);
      co_await ack_sender(api, layout, src);
      rdone += len;
      recv_pending = rdone < rdata.size();
      progressed = true;
    }
    if (send_pending &&
        api.flag_peek(layout.ready_flag(self, dest)) != 0) {
      co_await await_ack(api, layout, dest);
      if (sdone < sdata.size()) {
        const std::size_t len =
            std::min(layout.chunk_bytes(), sdata.size() - sdone);
        co_await stage_and_signal(api, layout, sdata.subspan(sdone, len),
                                  dest);
        sdone += len;
      } else {
        send_pending = false;
      }
      progressed = true;
    }
    if (!progressed) {
      co_await api.charge(machine::Phase::kFlagWait,
                          api.cost().hw.core_clock().cycles(poll_cycles));
    }
  }
}

}  // namespace scc::rcce
