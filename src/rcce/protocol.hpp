// The RCCE wire protocol (Fig. 3 of the paper), factored into the four
// half-steps shared by the blocking, iRCCE-style and lightweight layers:
//
//   sender:    stage_and_signal .................. await_ack
//   receiver:  ............ await_and_fetch + ack_sender
//
// stage_and_signal: copy one chunk from the sender's private memory into
//   its own MPB payload, then set the `sent` flag in the receiver's MPB.
// await_and_fetch: wait for `sent`, clear it, copy the chunk out of the
//   sender's MPB into private memory (remote read over the mesh).
// ack_sender: set `ready` in the sender's MPB.
// await_ack: wait for `ready`, clear it -- only then may the sender reuse
//   its payload chunk.
//
// Messages with a trailing partial cache line cost an extra internal
// transfer call (the write-combining buffer only moves whole lines); this
// is the source of the period-4 latency spikes in Fig. 9.
#pragma once

#include <span>

#include "machine/core_api.hpp"
#include "rcce/layout.hpp"
#include "sim/task.hpp"

namespace scc::rcce {

/// Sender half-step 1: stage `chunk` into the local MPB payload at
/// `payload_offset` and raise `sent` at the receiver.
sim::Task<> stage_and_signal(machine::CoreApi& api, const Layout& layout,
                             std::span<const std::byte> chunk, int dest,
                             std::size_t payload_offset = 0);

/// Sender half-step 2: wait for the receiver's `ready`, then clear it.
sim::Task<> await_ack(machine::CoreApi& api, const Layout& layout, int dest);

/// Receiver half-step 1: wait for `sent` from `src`, clear it, and copy the
/// staged chunk from `src`'s MPB into `chunk` (private memory).
sim::Task<> await_and_fetch(machine::CoreApi& api, const Layout& layout,
                            std::span<std::byte> chunk, int src,
                            std::size_t payload_offset = 0);

/// Receiver half-step 2: raise `ready` at the sender.
sim::Task<> ack_sender(machine::CoreApi& api, const Layout& layout, int src);

/// True if `sent` from `src` is already raised (zero-cost probe used by the
/// non-blocking engines' test paths; the charged read happens on fetch).
[[nodiscard]] bool sent_is_up(machine::CoreApi& api, const Layout& layout,
                              int src);

/// Completes an in-flight bidirectional exchange whose messages may exceed
/// one MPB chunk: alternates between fetching available receive chunks from
/// `src` and, on ack, staging further send chunks to `dest`, polling every
/// `poll_cycles` core cycles when neither side is ready.
///
/// Completing the receive *before* pushing the remaining send chunks (what
/// the engines' plain wait paths do) deadlocks for multi-chunk messages in
/// any exchange cycle -- pairwise included: each peer waits for its
/// source's next chunk while its own next chunk sits unstaged behind the
/// completed-receive-first policy. Engines call this only for the oversized
/// case, keeping single-chunk wait sequences (and their timing) unchanged.
///
/// Preconditions: the first send chunk (`staged` bytes, min(chunk, total))
/// is already staged and signalled; the receive has fetched nothing yet.
/// Performs the receive's full fetch+ack chunk loop (at least one handshake
/// even for empty messages) and the send's remaining stage+ack loop; the
/// caller charges its own per-request completion overheads afterwards.
sim::Task<> complete_exchange(machine::CoreApi& api, const Layout& layout,
                              std::span<const std::byte> sdata,
                              std::size_t staged, int dest,
                              std::span<std::byte> rdata, int src,
                              std::uint64_t poll_cycles);

}  // namespace scc::rcce
