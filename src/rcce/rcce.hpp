// RCCE-like blocking message passing (the SCC's native communication
// stack, reimplemented against the simulator's CoreApi).
//
// Semantics follow the paper's description of RCCE v1.1.0:
//  - send/recv are blocking and synchronize twice (Fig. 3): the receiver
//    waits for the sender to stage data, the sender waits until the
//    receiver picked it up;
//  - the receiver must know the sender and the exact size "in advance";
//  - messages larger than the MPB payload chunk are split into chunks,
//    each individually handshaked;
//  - the library ships naive collectives in which the root communicates
//    with the other cores serially (Section III).
//
// One Rcce object exists per simulated core (SPMD style).
#pragma once

#include <cstddef>
#include <span>

#include "machine/core_api.hpp"
#include "rcce/layout.hpp"
#include "sim/task.hpp"

namespace scc::rcce {

/// Reduction operators of the RCCE "non-gory" collective interface.
enum class ReduceOp { kSum, kMax, kMin, kProd };

class Rcce {
 public:
  Rcce(machine::CoreApi& api, const Layout& layout)
      : api_(&api), layout_(&layout) {}

  [[nodiscard]] int rank() const { return api_->rank(); }
  [[nodiscard]] int num_cores() const { return layout_->num_cores(); }
  [[nodiscard]] machine::CoreApi& api() { return *api_; }
  [[nodiscard]] const Layout& layout() const { return *layout_; }

  /// Blocking send: returns only after `dest` has consumed every chunk.
  sim::Task<> send(std::span<const std::byte> data, int dest);

  /// Blocking receive: source and size must match the send exactly.
  sim::Task<> recv(std::span<std::byte> data, int src);

  /// One-sided put/get into a raw payload offset of a core's MPB (the
  /// "gory" RCCE interface); no synchronization implied.
  sim::Task<> put(std::span<const std::byte> data, int dest_core,
                  std::size_t payload_offset);
  sim::Task<> get(std::span<std::byte> data, int src_core,
                  std::size_t payload_offset);

  /// Dissemination barrier over MPB flags.
  sim::Task<> barrier();

  /// Plain-RCCE broadcast: the root sends to every other core in turn.
  sim::Task<> bcast_naive(std::span<std::byte> data, int root);

  /// Plain-RCCE reduce: every core sends its vector to the root, which
  /// performs the whole reduction by itself (paper, Section III). With
  /// `all` set the root then broadcasts the result (naive Allreduce).
  sim::Task<> reduce_naive(std::span<const double> in, std::span<double> out,
                           ReduceOp op, int root, bool all);

 private:
  machine::CoreApi* api_;
  const Layout* layout_;
  std::uint8_t barrier_epoch_ = 0;
};

/// Applies `op` element-wise: acc[i] = acc[i] op value[i]. Charges compute
/// cycles; callers charge the memory traffic. Shared by all layers.
sim::Task<> apply_reduce(machine::CoreApi& api, std::span<const double> value,
                         std::span<double> acc, ReduceOp op);

}  // namespace scc::rcce
