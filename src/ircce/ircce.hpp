// iRCCE-style general non-blocking communication engine.
//
// Reproduces the feature set the paper's Section IV-B calls out as the
// source of software overhead:
//   - any number of concurrent isend/irecv requests, kept in linked lists,
//   - receives from an arbitrary source (wildcard),
//   - cancellation of pending requests,
//   - test/wait/wait_all progress calls.
// Each issued and each completed request charges the (large) iRCCE
// bookkeeping overhead from the cost model; the protocol on the wire is the
// same Fig. 3 flag handshake as blocking RCCE, minus the forced ordering.
//
// Staging discipline: a core has one MPB payload chunk, so at most one
// send occupies it at a time; further isends queue in FIFO order and are
// staged as predecessors complete (inside test/wait, like the real
// library's push function).
#pragma once

#include <cstdint>
#include <list>
#include <span>

#include "rcce/rcce.hpp"
#include "sim/task.hpp"

namespace scc::ircce {

/// Wildcard source for irecv.
inline constexpr int kAnySource = -1;

using RequestId = std::uint64_t;

class Ircce {
 public:
  explicit Ircce(rcce::Rcce& rcce) : rcce_(&rcce) {}

  [[nodiscard]] int rank() const { return rcce_->rank(); }

  /// Starts a non-blocking send. The data span must stay valid until the
  /// request completes.
  sim::Task<RequestId> isend(std::span<const std::byte> data, int dest);

  /// Starts a non-blocking receive; `src` may be kAnySource.
  sim::Task<RequestId> irecv(std::span<std::byte> data, int src);

  /// Non-blocking progress probe; true when the request completed (and was
  /// retired). Testing a completed/unknown id returns true.
  sim::Task<bool> test(RequestId id);

  /// Blocks until the request completes.
  sim::Task<> wait(RequestId id);

  /// Completes a set of requests: receives are serviced in posting order
  /// first (they carry the data movement), then send acknowledgements.
  sim::Task<> wait_all(std::span<const RequestId> ids);

  /// Cancels a request that has not touched the wire yet (queued send or
  /// un-matched receive). Returns false when it already made progress.
  sim::Task<bool> cancel(RequestId id);

  /// After a wildcard receive completes, the actual source rank.
  [[nodiscard]] int source_of(RequestId id) const;

  [[nodiscard]] std::size_t pending_requests() const {
    return sends_.size() + recvs_.size();
  }

 private:
  enum class State : std::uint8_t { kQueued, kStaged, kPosted, kDone };

  struct Request {
    RequestId id = 0;
    bool is_send = false;
    int peer = 0;           // resolved source for completed wildcards
    std::span<const std::byte> sdata;
    std::span<std::byte> rdata;
    State state = State::kQueued;
  };

  using List = std::list<Request>;

  [[nodiscard]] List::iterator find_send(RequestId id);
  [[nodiscard]] List::iterator find_recv(RequestId id);

  /// Stages the head queued send if the payload chunk is free.
  sim::Task<> progress_sends();
  sim::Task<> complete_send(List::iterator it);
  sim::Task<> complete_recv(List::iterator it);
  /// Earliest receive posted before `it` with first claim on `it`'s match
  /// (an earlier wildcard, or -- for directed `it` -- an earlier receive
  /// directed at the same source); recvs_.end() when `it` may match now.
  [[nodiscard]] List::iterator first_blocker(List::iterator it);
  /// True when an earlier-posted directed receive named `src`, so a later
  /// wildcard must not claim that channel's head (MPI envelope order).
  [[nodiscard]] bool claimed_by_earlier(List::const_iterator it,
                                        int src) const;
  /// Resolves the wildcard receive `it` to a concrete source, blocking
  /// until an unclaimed peer has staged a message (bounded poll loop).
  sim::Task<int> resolve_any_source(List::iterator it);

  rcce::Rcce* rcce_;
  List sends_;
  List recvs_;
  std::list<std::pair<RequestId, int>> completed_sources_;
  RequestId next_id_ = 1;
  bool chunk_busy_ = false;  // a staged send occupies the payload chunk
};

}  // namespace scc::ircce
