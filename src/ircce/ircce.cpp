#include "ircce/ircce.hpp"

#include <algorithm>

#include "rcce/protocol.hpp"

namespace scc::ircce {

namespace {
/// Wildcard receives must busy-poll across all potential senders' flags;
/// this is the probe spacing (core cycles).
constexpr std::uint64_t kAnySourcePollCycles = 300;
}  // namespace

Ircce::List::iterator Ircce::find_send(RequestId id) {
  return std::find_if(sends_.begin(), sends_.end(),
                      [&](const Request& r) { return r.id == id; });
}

Ircce::List::iterator Ircce::find_recv(RequestId id) {
  return std::find_if(recvs_.begin(), recvs_.end(),
                      [&](const Request& r) { return r.id == id; });
}

sim::Task<RequestId> Ircce::isend(std::span<const std::byte> data, int dest) {
  auto& api = rcce_->api();
  SCC_EXPECTS(dest >= 0 && dest < rcce_->num_cores() && dest != rank());
  co_await api.overhead(api.cost().sw.ircce_issue);
  Request req;
  req.id = next_id_++;
  req.is_send = true;
  req.peer = dest;
  req.sdata = data;
  sends_.push_back(req);
  co_await progress_sends();
  co_return req.id;
}

sim::Task<RequestId> Ircce::irecv(std::span<std::byte> data, int src) {
  auto& api = rcce_->api();
  SCC_EXPECTS(src == kAnySource ||
              (src >= 0 && src < rcce_->num_cores() && src != rank()));
  co_await api.overhead(api.cost().sw.ircce_issue);
  Request req;
  req.id = next_id_++;
  req.is_send = false;
  req.peer = src;
  req.rdata = data;
  req.state = State::kPosted;
  recvs_.push_back(req);
  co_return req.id;
}

sim::Task<> Ircce::progress_sends() {
  if (chunk_busy_) co_return;
  for (Request& req : sends_) {
    if (req.state == State::kQueued) {
      const std::size_t chunk =
          std::min(rcce_->layout().chunk_bytes(), req.sdata.size());
      co_await rcce::stage_and_signal(rcce_->api(), rcce_->layout(),
                                req.sdata.first(chunk), req.peer);
      req.state = State::kStaged;
      chunk_busy_ = true;
      co_return;
    }
    if (req.state == State::kStaged) co_return;  // chunk already in use
  }
}

sim::Task<> Ircce::complete_send(List::iterator it) {
  auto& api = rcce_->api();
  const rcce::Layout& layout = rcce_->layout();
  // FIFO staging discipline: everything queued ahead of us must finish
  // first (they hold or will hold the payload chunk).
  while (sends_.begin() != it) {
    co_await complete_send(sends_.begin());
  }
  if (it->state == State::kQueued) {
    SCC_ASSERT(!chunk_busy_);
    co_await progress_sends();
  }
  SCC_ASSERT(it->state == State::kStaged);
  const std::size_t total = it->sdata.size();
  std::size_t done = std::min(layout.chunk_bytes(), total);
  co_await rcce::await_ack(api, layout, it->peer);
  chunk_busy_ = false;
  // Remaining chunks of an oversized message are pushed synchronously.
  while (done < total) {
    const std::size_t len = std::min(layout.chunk_bytes(), total - done);
    co_await rcce::stage_and_signal(api, layout, it->sdata.subspan(done, len),
                              it->peer);
    co_await rcce::await_ack(api, layout, it->peer);
    done += len;
  }
  co_await api.overhead(api.cost().sw.ircce_complete);
  sends_.erase(it);
  co_await progress_sends();
}

Ircce::List::iterator Ircce::first_blocker(List::iterator it) {
  for (auto j = recvs_.begin(); j != it; ++j) {
    if (j->peer == kAnySource ||
        (it->peer != kAnySource && j->peer == it->peer)) {
      return j;
    }
  }
  return recvs_.end();
}

bool Ircce::claimed_by_earlier(List::const_iterator it, int src) const {
  for (auto j = recvs_.begin(); j != it; ++j) {
    if (j->peer == src) return true;
  }
  return false;
}

sim::Task<int> Ircce::resolve_any_source(List::iterator it) {
  auto& api = rcce_->api();
  const rcce::Layout& layout = rcce_->layout();
  for (;;) {
    for (int src = 0; src < rcce_->num_cores(); ++src) {
      if (src == rank()) continue;
      // A channel whose head belongs to an earlier directed receive is
      // invisible to this wildcard (draining that receive instead could
      // block on a message that is legitimately still far away).
      if (claimed_by_earlier(it, src)) continue;
      if (rcce::sent_is_up(api, layout, src)) co_return src;
    }
    co_await api.charge(machine::Phase::kFlagWait,
                        api.cost().hw.core_clock().cycles(kAnySourcePollCycles));
  }
}

sim::Task<> Ircce::complete_recv(List::iterator it) {
  auto& api = rcce_->api();
  const rcce::Layout& layout = rcce_->layout();
  // FIFO-fair matching (MPI envelope order): a staged message from source s
  // belongs to the EARLIEST still-posted receive that can match s.
  // Completing `it` past such a receive would steal its channel head --
  // wrong data, and a completion set that flips with perturbation seeds
  // depending on who polls first. Drain blockers in posting order; each
  // recursive completion erases its node, so positions strictly decrease.
  for (auto blocker = first_blocker(it); blocker != recvs_.end();
       blocker = first_blocker(it)) {
    co_await complete_recv(blocker);
  }
  int src = it->peer;
  if (src == kAnySource) {
    src = co_await resolve_any_source(it);
    it->peer = src;
  }
  const std::size_t total = it->rdata.size();
  std::size_t done = 0;
  do {
    const std::size_t len = std::min(layout.chunk_bytes(), total - done);
    co_await rcce::await_and_fetch(api, layout, it->rdata.subspan(done, len), src);
    co_await rcce::ack_sender(api, layout, src);
    done += len;
  } while (done < total);
  co_await api.overhead(api.cost().sw.ircce_complete);
  completed_sources_.emplace_back(it->id, src);
  if (completed_sources_.size() > 64) completed_sources_.pop_front();
  recvs_.erase(it);
}

sim::Task<bool> Ircce::test(RequestId id) {
  auto& api = rcce_->api();
  const rcce::Layout& layout = rcce_->layout();
  if (auto it = find_send(id); it != sends_.end()) {
    co_await progress_sends();
    if (it->state == State::kStaged && sends_.begin() == it &&
        api.flag_peek(layout.ready_flag(rank(), it->peer)) != 0 &&
        it->sdata.size() <= layout.chunk_bytes()) {
      co_await complete_send(it);
      co_return true;
    }
    co_return false;
  }
  if (auto it = find_recv(id); it != recvs_.end()) {
    // FIFO-fair matching: while an earlier receive has first claim on this
    // one's channel, test() must answer false rather than either stealing
    // the blocker's message or blocking to drain it.
    if (first_blocker(it) != recvs_.end()) co_return false;
    const int src = it->peer;
    if (it->rdata.size() > layout.chunk_bytes()) co_return false;
    if (src != kAnySource && sent_is_up(api, layout, src)) {
      co_await complete_recv(it);
      co_return true;
    }
    if (src == kAnySource) {
      for (int candidate = 0; candidate < rcce_->num_cores(); ++candidate) {
        if (candidate == rank()) continue;
        if (claimed_by_earlier(it, candidate)) continue;
        if (rcce::sent_is_up(api, layout, candidate)) {
          it->peer = candidate;
          co_await complete_recv(it);
          co_return true;
        }
      }
    }
    co_return false;
  }
  co_return true;  // unknown == already completed
}

sim::Task<> Ircce::wait(RequestId id) {
  if (auto it = find_send(id); it != sends_.end()) {
    co_await complete_send(it);
    co_return;
  }
  if (auto it = find_recv(id); it != recvs_.end()) {
    co_await complete_recv(it);
    co_return;
  }
}

sim::Task<> Ircce::wait_all(std::span<const RequestId> ids) {
  // One send + one concrete-source receive with either message exceeding
  // one MPB chunk: the receive-first policy below deadlocks (each peer's
  // next send chunk waits behind its own unfinished receive; see
  // rcce::complete_exchange), so complete both interleaved. Single-chunk
  // exchanges keep the historical sequence and timing.
  if (ids.size() == 2 && sends_.size() == 1 && recvs_.size() == 1) {
    const auto sit = sends_.begin();
    const auto rit = recvs_.begin();
    const bool ours = (ids[0] == sit->id && ids[1] == rit->id) ||
                      (ids[0] == rit->id && ids[1] == sit->id);
    const std::size_t chunk = rcce_->layout().chunk_bytes();
    if (ours && rit->peer != kAnySource && sit->state == State::kStaged &&
        (sit->sdata.size() > chunk || rit->rdata.size() > chunk)) {
      auto& api = rcce_->api();
      co_await rcce::complete_exchange(api, rcce_->layout(), sit->sdata,
                                       std::min(chunk, sit->sdata.size()),
                                       sit->peer, rit->rdata, rit->peer,
                                       kAnySourcePollCycles);
      chunk_busy_ = false;
      co_await api.overhead(api.cost().sw.ircce_complete);  // the receive's
      co_await api.overhead(api.cost().sw.ircce_complete);  // the send's
      completed_sources_.emplace_back(rit->id, rit->peer);
      if (completed_sources_.size() > 64) completed_sources_.pop_front();
      sends_.erase(sit);
      recvs_.erase(rit);
      co_return;  // sends_ is empty; nothing further to stage
    }
  }
  // Receives first, in posting order: they move the data; send
  // acknowledgements arrive as a side effect of the peers' receives.
  for (const RequestId id : ids) {
    if (find_recv(id) != recvs_.end()) co_await wait(id);
  }
  for (const RequestId id : ids) {
    if (find_send(id) != sends_.end()) co_await wait(id);
  }
}

sim::Task<bool> Ircce::cancel(RequestId id) {
  auto& api = rcce_->api();
  co_await api.overhead(api.cost().sw.ircce_complete);
  if (auto it = find_send(id); it != sends_.end()) {
    if (it->state != State::kQueued) co_return false;  // already on the wire
    sends_.erase(it);
    co_return true;
  }
  if (auto it = find_recv(id); it != recvs_.end()) {
    recvs_.erase(it);
    co_return true;
  }
  co_return false;
}

int Ircce::source_of(RequestId id) const {
  for (const auto& [rid, src] : completed_sources_) {
    if (rid == id) return src;
  }
  return kAnySource;
}

}  // namespace scc::ircce
