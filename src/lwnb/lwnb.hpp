// Lightweight non-blocking primitives (the paper's Section IV-B).
//
// The insight: collective algorithms organized in rounds exchange at most
// one message per peer per round, so the general iRCCE machinery (request
// lists, wildcards, cancellation, dynamic memory) is pure overhead there.
// This layer supports exactly ONE outstanding send and ONE outstanding
// receive, held in fixed slots -- no allocation, no list walking -- and
// charges correspondingly small per-call costs.
//
// The wire protocol is the identical Fig. 3 flag handshake, so the blocking
// / iRCCE / lightweight layers are interchangeable correctness-wise; only
// the software path length differs.
#pragma once

#include <span>

#include "rcce/rcce.hpp"
#include "sim/task.hpp"

namespace scc::lwnb {

class Lwnb {
 public:
  explicit Lwnb(rcce::Rcce& rcce) : rcce_(&rcce) {}

  [[nodiscard]] int rank() const { return rcce_->rank(); }

  /// Starts the (single) non-blocking send: stages the first chunk into the
  /// local MPB and raises `sent` at `dest`. Precondition: no send pending.
  sim::Task<> isend(std::span<const std::byte> data, int dest);

  /// Posts the (single) non-blocking receive. Precondition: none pending.
  sim::Task<> irecv(std::span<std::byte> data, int src);

  /// Completes the pending send (waits for the receiver's ack; pushes any
  /// remaining chunks of an oversized message).
  sim::Task<> wait_send();

  /// Completes the pending receive (fetch + ack).
  sim::Task<> wait_recv();

  /// Completes both: the receive first (it moves data; the send ack arrives
  /// from the peer's own receive, overlapping with our copy).
  sim::Task<> wait_both();

  /// Non-blocking completion probes for cooperative progress engines: if
  /// the pending operation can finish without waiting on a peer (its flag
  /// is already up and the message fits one MPB chunk), complete it and
  /// return true; otherwise return false without charging wait time. Multi-
  /// chunk messages always answer false -- their remaining chunks need the
  /// blocking push loop of wait_send / wait_recv.
  sim::Task<bool> test_send();
  sim::Task<bool> test_recv();

  [[nodiscard]] bool send_pending() const { return send_pending_; }
  [[nodiscard]] bool recv_pending() const { return recv_pending_; }

 private:
  rcce::Rcce* rcce_;
  std::span<const std::byte> sdata_;
  std::span<std::byte> rdata_;
  int sdest_ = -1;
  int rsrc_ = -1;
  bool send_pending_ = false;
  bool recv_pending_ = false;
};

}  // namespace scc::lwnb
