#include "lwnb/lwnb.hpp"

#include <algorithm>

#include "rcce/protocol.hpp"

namespace scc::lwnb {

namespace {
/// Probe spacing (core cycles) of the interleaved oversized-exchange
/// completion loop (matches the iRCCE engine's wildcard poll spacing).
constexpr std::uint64_t kProgressPollCycles = 300;
}  // namespace

sim::Task<> Lwnb::isend(std::span<const std::byte> data, int dest) {
  SCC_EXPECTS(!send_pending_);
  SCC_EXPECTS(dest >= 0 && dest < rcce_->num_cores() && dest != rank());
  auto& api = rcce_->api();
  co_await api.overhead(api.cost().sw.lwnb_issue);
  sdata_ = data;
  sdest_ = dest;
  send_pending_ = true;
  const std::size_t chunk =
      std::min(rcce_->layout().chunk_bytes(), data.size());
  co_await rcce::stage_and_signal(api, rcce_->layout(), data.first(chunk),
                                  dest);
}

sim::Task<> Lwnb::irecv(std::span<std::byte> data, int src) {
  SCC_EXPECTS(!recv_pending_);
  SCC_EXPECTS(src >= 0 && src < rcce_->num_cores() && src != rank());
  auto& api = rcce_->api();
  co_await api.overhead(api.cost().sw.lwnb_issue);
  rdata_ = data;
  rsrc_ = src;
  recv_pending_ = true;
}

sim::Task<> Lwnb::wait_send() {
  SCC_EXPECTS(send_pending_);
  auto& api = rcce_->api();
  const rcce::Layout& layout = rcce_->layout();
  co_await rcce::await_ack(api, layout, sdest_);
  std::size_t done = std::min(layout.chunk_bytes(), sdata_.size());
  while (done < sdata_.size()) {
    const std::size_t len = std::min(layout.chunk_bytes(), sdata_.size() - done);
    co_await rcce::stage_and_signal(api, layout, sdata_.subspan(done, len),
                                    sdest_);
    co_await rcce::await_ack(api, layout, sdest_);
    done += len;
  }
  co_await api.overhead(api.cost().sw.lwnb_complete);
  send_pending_ = false;
}

sim::Task<> Lwnb::wait_recv() {
  SCC_EXPECTS(recv_pending_);
  auto& api = rcce_->api();
  const rcce::Layout& layout = rcce_->layout();
  std::size_t done = 0;
  do {
    const std::size_t len = std::min(layout.chunk_bytes(), rdata_.size() - done);
    co_await rcce::await_and_fetch(api, layout, rdata_.subspan(done, len),
                                   rsrc_);
    co_await rcce::ack_sender(api, layout, rsrc_);
    done += len;
  } while (done < rdata_.size());
  co_await api.overhead(api.cost().sw.lwnb_complete);
  recv_pending_ = false;
}

sim::Task<> Lwnb::wait_both() {
  // Messages that exceed one MPB chunk must progress both directions
  // interleaved: the receive-first sequence below deadlocks when every
  // peer's next send chunk waits behind its own unfinished receive (see
  // rcce::complete_exchange). Single-chunk exchanges keep the historical
  // sequence -- and its exact timing -- unchanged.
  const std::size_t chunk = rcce_->layout().chunk_bytes();
  if (send_pending_ && recv_pending_ &&
      (sdata_.size() > chunk || rdata_.size() > chunk)) {
    auto& api = rcce_->api();
    co_await rcce::complete_exchange(api, rcce_->layout(), sdata_,
                                     std::min(chunk, sdata_.size()), sdest_,
                                     rdata_, rsrc_, kProgressPollCycles);
    co_await api.overhead(api.cost().sw.lwnb_complete);  // the receive's
    co_await api.overhead(api.cost().sw.lwnb_complete);  // the send's
    recv_pending_ = false;
    send_pending_ = false;
    co_return;
  }
  if (recv_pending_) co_await wait_recv();
  if (send_pending_) co_await wait_send();
}

sim::Task<bool> Lwnb::test_send() {
  SCC_EXPECTS(send_pending_);
  auto& api = rcce_->api();
  const rcce::Layout& layout = rcce_->layout();
  if (sdata_.size() > layout.chunk_bytes()) co_return false;
  if (api.flag_peek(layout.ready_flag(rank(), sdest_)) == 0) co_return false;
  co_await rcce::await_ack(api, layout, sdest_);  // flag up: no wait
  co_await api.overhead(api.cost().sw.lwnb_complete);
  send_pending_ = false;
  co_return true;
}

sim::Task<bool> Lwnb::test_recv() {
  SCC_EXPECTS(recv_pending_);
  auto& api = rcce_->api();
  const rcce::Layout& layout = rcce_->layout();
  if (rdata_.size() > layout.chunk_bytes()) co_return false;
  if (!rcce::sent_is_up(api, layout, rsrc_)) co_return false;
  co_await rcce::await_and_fetch(api, layout, rdata_, rsrc_);
  co_await rcce::ack_sender(api, layout, rsrc_);
  co_await api.overhead(api.cost().sw.lwnb_complete);
  recv_pending_ = false;
  co_return true;
}

}  // namespace scc::lwnb
