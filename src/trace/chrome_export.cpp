#include "trace/chrome_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "common/string_util.hpp"

namespace scc::trace {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strprintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Chrome pids must be plain integers; cores, the scheduler and the link
/// tracks of every run get distinct ones, assigned in sorted (run, pid)
/// order so the assignment is independent of event order.
struct ProcessTable {
  std::map<std::pair<int, int>, int> ids;  // (run, raw pid) -> chrome pid

  explicit ProcessTable(const Recorder& recorder) {
    for (const Event& e : recorder.events()) ids[{e.run, e.pid}] = 0;
    int next = 1;
    for (auto& [key, id] : ids) id = next++;
  }

  [[nodiscard]] int of(const Event& e) const { return ids.at({e.run, e.pid}); }
};

std::string process_name(const Recorder& recorder, int run, int raw_pid) {
  std::string name;
  if (recorder.run_labels().size() > 1) {
    name = strprintf("run%d ", run);
    const std::string& label =
        recorder.run_labels()[static_cast<std::size_t>(run)];
    if (!label.empty()) name += label + " ";
  } else if (!recorder.run_labels()[0].empty()) {
    name = recorder.run_labels()[0] + " ";
  }
  if (raw_pid == kEnginePid) return name + "scheduler";
  if (raw_pid == kLinkPid) return name + "noc links";
  return name + strprintf("core %d", raw_pid);
}

}  // namespace

std::string format_us(SimTime t) {
  constexpr std::uint64_t kFsPerUs = 1'000'000'000;
  return strprintf("%llu.%09llu",
                   static_cast<unsigned long long>(t.femtoseconds() / kFsPerUs),
                   static_cast<unsigned long long>(t.femtoseconds() % kFsPerUs));
}

void write_chrome_json(const Recorder& recorder, std::ostream& os) {
  const ProcessTable procs(recorder);

  // Thread lanes per process, sorted for a stable tid assignment.
  std::map<int, std::map<std::string_view, int>> lanes;
  for (const Event& e : recorder.events()) {
    if (e.kind != EventKind::kLinkWindow) lanes[procs.of(e)][e.lane] = 0;
  }
  for (auto& [pid, by_lane] : lanes) {
    int next = 1;
    for (auto& [lane, tid] : by_lane) tid = next++;
  }

  os << "{\n\"displayTimeUnit\": \"ns\",\n";
  os << "\"otherData\": {\"dropped_events\": \"" << recorder.dropped()
     << "\"},\n";
  os << "\"traceEvents\": [";

  bool first = true;
  const auto emit = [&](const std::string& line) {
    os << (first ? "\n" : ",\n") << line;
    first = false;
  };

  // Metadata: process and thread names.
  for (const auto& [key, pid] : procs.ids) {
    emit(strprintf(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":"
        "{\"name\":\"%s\"}}",
        pid,
        json_escape(process_name(recorder, key.first, key.second)).c_str()));
    emit(strprintf(
        "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%d,\"args\":"
        "{\"sort_index\":%d}}",
        pid, pid));
  }
  for (const auto& [pid, by_lane] : lanes) {
    for (const auto& [lane, tid] : by_lane) {
      emit(strprintf(
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
          "\"args\":{\"name\":\"%s\"}}",
          pid, tid, json_escape(lane).c_str()));
    }
  }

  for (const Event& e : recorder.events()) {
    const int pid = procs.of(e);
    switch (e.kind) {
      case EventKind::kInterval: {
        std::string line = strprintf(
            "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":%d,"
            "\"tid\":%d,\"ts\":%s,\"dur\":%s",
            json_escape(e.name).c_str(), pid, lanes[pid][e.lane],
            format_us(e.t0).c_str(), format_us(e.t1 - e.t0).c_str());
        if (!e.detail.empty()) {
          line += strprintf(",\"args\":{\"detail\":\"%s\"}",
                            json_escape(e.detail).c_str());
        }
        emit(line + "}");
        break;
      }
      case EventKind::kInstant: {
        std::string line = strprintf(
            "{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\","
            "\"pid\":%d,\"tid\":%d,\"ts\":%s",
            json_escape(e.name).c_str(), pid, lanes[pid][e.lane],
            format_us(e.t0).c_str());
        if (!e.detail.empty()) {
          line += strprintf(",\"args\":{\"detail\":\"%s\"}",
                            json_escape(e.detail).c_str());
        }
        emit(line + "}");
        break;
      }
      case EventKind::kLinkWindow: {
        // Busy windows per link never overlap (the contention model is a
        // busy-until horizon), so a 0/1 counter track renders occupancy.
        emit(strprintf(
            "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"ts\":%s,\"args\":"
            "{\"occupied\":1}}",
            json_escape(e.lane).c_str(), pid, format_us(e.t0).c_str()));
        emit(strprintf(
            "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"ts\":%s,\"args\":"
            "{\"occupied\":0}}",
            json_escape(e.lane).c_str(), pid, format_us(e.t1).c_str()));
        break;
      }
    }
  }
  os << "\n]\n}\n";
}

void write_chrome_json_file(const Recorder& recorder,
                            const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open trace file: " + path);
  write_chrome_json(recorder, os);
}

void write_link_csv(const Recorder& recorder, std::ostream& os) {
  struct LinkStats {
    std::uint64_t windows = 0;
    SimTime busy;
    SimTime queue;
  };
  std::map<std::pair<int, std::string_view>, LinkStats> stats;
  std::map<int, std::pair<SimTime, SimTime>> span;  // run -> [min t0, max t1]
  for (const Event& e : recorder.events()) {
    auto [it, inserted] = span.try_emplace(e.run, e.t0, e.t1);
    if (!inserted) {
      it->second.first = std::min(it->second.first, e.t0);
      it->second.second = std::max(it->second.second, e.t1);
    }
    if (e.kind != EventKind::kLinkWindow) continue;
    LinkStats& s = stats[{e.run, e.lane}];
    ++s.windows;
    s.busy += e.t1 - e.t0;
    s.queue += e.extra;
  }
  os << "run,link,windows,busy_us,queue_us,utilization_pct\n";
  for (const auto& [key, s] : stats) {
    const auto& [lo, hi] = span.at(key.first);
    const double span_fs =
        static_cast<double>((hi - lo).femtoseconds());
    const double util =
        span_fs > 0.0
            ? static_cast<double>(s.busy.femtoseconds()) / span_fs * 100.0
            : 0.0;
    os << strprintf("%d,\"%s\",%llu,%s,%s,%.3f\n", key.first,
                    std::string(key.second).c_str(),
                    static_cast<unsigned long long>(s.windows),
                    format_us(s.busy).c_str(), format_us(s.queue).c_str(),
                    util);
  }
}

void write_link_csv_file(const Recorder& recorder, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open link CSV file: " + path);
  write_link_csv(recorder, os);
}

}  // namespace scc::trace
