// Structured phase-interval tracing.
//
// The paper motivates its first optimization with a time-attribution
// profile ("cores spend up to 50% of their time in rcce_wait_until"), but
// machine::CoreProfile only keeps per-phase *totals*. The Recorder keeps
// the intervals those totals are summed from -- {core, phase, t0, t1,
// detail} -- plus scheduler instants (task spawn/park/notify, perturbation
// decisions) and per-link occupancy windows from the contention model, so a
// run can be replayed into a visual timeline (chrome://tracing; see
// chrome_export.hpp) and per-link utilization can be derived.
//
// Invariants:
//   - Totals are derivable: summing a core's intervals per phase lane
//     reproduces its CoreProfile counters exactly (tested).
//   - Bounded memory: at most `capacity` events are kept; later events are
//     counted in dropped() instead of stored (cap + drop counter).
//   - Deterministic: recording only reads virtual time, so given the same
//     program and (engine, perturbation) seeds the event stream -- and the
//     exported JSON -- is bit-identical run to run.
//   - Observational: recording never charges time or schedules events, so
//     traced and untraced runs have identical timing (tested).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace scc::trace {

/// Pseudo-pids for event sources that are not a core. Core events use the
/// core's rank (>= 0).
inline constexpr int kEnginePid = -1;  // scheduler instants
inline constexpr int kLinkPid = -2;    // NoC link occupancy windows

enum class EventKind : std::uint8_t {
  kInterval,    // phase interval on a core lane
  kInstant,     // point event (scheduler decisions etc.)
  kLinkWindow,  // one link busy window of one transfer
};

struct Event {
  EventKind kind = EventKind::kInstant;
  /// Run scope (see Recorder::begin_run); 0 until the first begin_run.
  int run = 0;
  /// Core rank, kEnginePid or kLinkPid.
  int pid = 0;
  /// Lane within the pid: phase name for intervals, link name for link
  /// windows, scheduler lane for instants. Interned/static storage.
  std::string_view lane;
  /// Event name (instants); intervals reuse the lane name.
  std::string_view name;
  SimTime t0;
  SimTime t1;     // == t0 for instants
  SimTime extra;  // kLinkWindow: queueing delay the transfer suffered here
  std::string detail;  // small free-form annotation (args.detail in chrome)
};

class Recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit Recorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {
    run_labels_.emplace_back();  // implicit run 0
  }

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Opens a new run scope (e.g. one harness::run_collective invocation):
  /// subsequent events carry the new run index and the exporter gives each
  /// (run, core) its own process group, so one trace can hold a whole sweep.
  void begin_run(std::string label) {
    run_labels_.push_back(std::move(label));
  }

  /// Phase interval [t0, t1] on a core's `lane` (zero-length is allowed:
  /// a satisfied flag wait still mirrors its CoreProfile::add call).
  void interval(int core, std::string_view lane, SimTime t0, SimTime t1,
                std::string detail = {}) {
    if (!admit()) return;
    events_.push_back(Event{EventKind::kInterval, current_run(), core, lane,
                            lane, t0, t1, SimTime::zero(),
                            std::move(detail)});
  }

  /// Point event at `t` (scheduler decisions, perturbation injections...).
  void instant(int pid, std::string_view lane, std::string_view name,
               SimTime t, std::string detail = {}) {
    if (!admit()) return;
    events_.push_back(Event{EventKind::kInstant, current_run(), pid, lane,
                            name, t, t, SimTime::zero(), std::move(detail)});
  }

  /// One transfer's busy window [t0, t1] on directed link `link`, plus the
  /// queueing delay it suffered waiting for the link to drain.
  void link_window(std::string_view link, SimTime t0, SimTime t1,
                   SimTime queue_delay) {
    if (!admit()) return;
    events_.push_back(Event{EventKind::kLinkWindow, current_run(), kLinkPid,
                            link, link, t0, t1, queue_delay, {}});
  }

  /// Stable storage for dynamically-built lane names (e.g. link names):
  /// the returned view lives as long as the recorder; repeats share a copy.
  std::string_view intern(const std::string& s) {
    return *interned_.insert(s).first;
  }

  [[nodiscard]] const std::vector<Event>& events() const { return events_; }
  [[nodiscard]] const std::vector<std::string>& run_labels() const {
    return run_labels_;
  }
  [[nodiscard]] int current_run() const {
    return static_cast<int>(run_labels_.size()) - 1;
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Splices another recorder's events into this one, in their recorded
  /// order: lane/name views are re-interned into this recorder's storage and
  /// every event is remapped onto THIS recorder's current run scope (the
  /// partitioned machine records per-partition during a window and splices
  /// into the caller's recorder, whose begin_run already named the run).
  /// The capacity cap applies as if the events had been recorded here;
  /// events the source recorder dropped stay dropped.
  void append_from(const Recorder& other) {
    for (const Event& ev : other.events()) {
      if (!admit()) continue;
      Event copy = ev;
      copy.run = current_run();
      copy.lane = intern(std::string(ev.lane));
      copy.name = ev.name == ev.lane ? copy.lane : intern(std::string(ev.name));
      events_.push_back(std::move(copy));
    }
    dropped_ += other.dropped();
  }

  /// Drops recorded events and run scopes (interned names are kept -- views
  /// handed out earlier must stay valid).
  void clear() {
    events_.clear();
    run_labels_.assign(1, std::string{});
    dropped_ = 0;
  }

 private:
  [[nodiscard]] bool admit() {
    if (events_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    return true;
  }

  std::size_t capacity_;
  std::vector<Event> events_;
  std::vector<std::string> run_labels_;
  std::uint64_t dropped_ = 0;
  // std::set: node-based, so element addresses (and the views intern()
  // hands out) are stable across inserts.
  std::set<std::string, std::less<>> interned_;
};

}  // namespace scc::trace
