// Exporters for trace::Recorder event streams.
//
// write_chrome_json emits the Trace Event Format consumed by
// chrome://tracing and Perfetto ("JSON object format" with a traceEvents
// array): one process per (run, core) -- plus one scheduler process and one
// NoC-links process per run -- one thread per phase lane, and link
// occupancy as 0/1 counter tracks. Timestamps are microseconds printed as
// exact decimals of the femtosecond event times (9 fractional digits), so
// a consumer can reconstruct the fs values losslessly and the output is
// bit-identical for identical event streams.
//
// write_link_csv summarizes the link windows: one row per (run, link) with
// window count, busy time, total queueing delay, and utilization over the
// run's traced span.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/recorder.hpp"

namespace scc::trace {

void write_chrome_json(const Recorder& recorder, std::ostream& os);
void write_chrome_json_file(const Recorder& recorder,
                            const std::string& path);

void write_link_csv(const Recorder& recorder, std::ostream& os);
void write_link_csv_file(const Recorder& recorder, const std::string& path);

/// "123.000456789" -- exact decimal microseconds of a femtosecond time
/// (chrome's ts unit). Shared with tests that parse timestamps back.
[[nodiscard]] std::string format_us(SimTime t);

}  // namespace scc::trace
