// Big-mesh halo-exchange workload for the conservative-PDES drain.
//
// A synthetic stencil on an SCC-style mesh, built to exercise
// sim::PdesEngine at scales where intra-run parallelism pays off: one cell
// per tile, each stepping on a content-jittered mesh-cycle cadence, with
// cells on a partition boundary posting their value to the facing cell
// across the boundary every step. The mesh is split into
// noc::Topology::partition_of column slabs; the cross-partition delay is
// the cost model's one-hop transit, which equals machine::pdes_lookahead's
// window -- so every window is full of local step events while every halo
// lands exactly on the conservative contract's boundary (the hardest legal
// case for the merge invariant).
//
// Partition-state disjointness (the PdesEngine contract) holds by
// construction: a cell is owned by the partition of its tile, step events
// touch only their own cell, and halos cross the boundary exclusively
// through PdesEngine::post.
//
// Every output is deterministic -- bit-identical for any worker count --
// and the result carries all four artifact families the identity tests
// diff: a per-partition Table (CSV/JSON), a chrome trace (per-partition
// recorders exported in partition order), and an scc-metrics-v1 snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/time.hpp"
#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"
#include "sim/pdes.hpp"

namespace scc::harness {

struct PdesScenarioSpec {
  int tiles_x = 32;
  int tiles_y = 16;
  /// Column slabs / event-loop partitions. Must be in [1, tiles_x].
  int partitions = 8;
  /// Host threads draining windows (forwarded to PdesConfig::workers).
  int workers = 1;
  /// Compute steps per cell.
  int steps = 32;
  /// Seeds the per-cell step-cadence jitter (pure hashing, no RNG state).
  std::uint64_t seed = 0x5cc0ffeeULL;
  /// Attach per-partition trace recorders and export a chrome trace.
  bool trace = false;
  /// Enable schedule perturbation on every partition engine, each from its
  /// own stream derived from perturb_seed (sim/pdes.hpp, "Perturbation
  /// composes per partition"). Still deterministic for any worker count.
  bool perturb = false;
  std::uint64_t perturb_seed = 0;
  /// Attach a window-cadence flight recorder: the coordinator samples the
  /// drain counters once per conservative window (PdesEngine window probe)
  /// into PdesScenarioResult::timeseries. The window sequence is
  /// deterministic, so the series is byte-identical for any worker count.
  bool sample = false;
};

struct PdesScenarioResult {
  struct PartitionRow {
    int partition = 0;
    int cells = 0;
    std::uint64_t events = 0;   // partition engine's events_processed()
    SimTime end_time;           // partition clock at drain end
    std::uint64_t checksum = 0; // fold of the partition's cells in rank order
  };

  std::uint64_t events = 0;      // sum across partitions
  std::uint64_t halo_posts = 0;  // cross-partition messages delivered
  SimTime end_time;              // max partition clock
  std::uint64_t checksum = 0;    // fold of all cells in rank order
  sim::PdesStats pdes;
  sim::EngineStats engine;       // aggregated per-partition stats
  std::vector<PartitionRow> rows;
  /// Chrome trace JSON, partitions concatenated in partition order; empty
  /// when the spec did not ask for tracing.
  std::string trace_json;
  metrics::MetricsRegistry metrics;
  /// Window-cadence drain counters (when PdesScenarioSpec::sample).
  std::optional<metrics::TimeSeries> timeseries;

  /// Per-partition result table (the CSV/JSON artifact).
  [[nodiscard]] Table to_table() const;
};

/// Runs the halo-exchange mesh under the spec's partition/worker counts.
[[nodiscard]] PdesScenarioResult run_pdes_mesh(const PdesScenarioSpec& spec);

}  // namespace scc::harness
