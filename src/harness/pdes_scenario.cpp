#include "harness/pdes_scenario.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "common/contracts.hpp"
#include "common/string_util.hpp"
#include "mem/cost_model.hpp"
#include "noc/topology.hpp"
#include "trace/chrome_export.hpp"
#include "trace/recorder.hpp"

namespace scc::harness {

namespace {

/// splitmix64 finalizer: the deterministic hash behind the step-cadence
/// jitter and the cell checksums. Pure function of its argument -- no
/// stream state to keep consistent across partitions or workers.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Cell {
  int rank = 0;        // tile id == cell id (one cell per tile)
  int partition = 0;
  std::uint64_t value = 0;   // evolves with each step
  std::uint64_t halo_acc = 0;  // fold of received halo values
  int steps_left = 0;
  int east_neighbor = -1;  // tile across an east partition boundary, or -1
  int west_neighbor = -1;  // tile across a west partition boundary, or -1
};

struct Mesh {
  PdesScenarioSpec spec;
  noc::Topology topo;
  mem::HwCostModel hw;
  sim::PdesEngine* pdes = nullptr;
  std::vector<Cell> cells;                        // indexed by tile id
  std::vector<std::unique_ptr<trace::Recorder>> recorders;  // per partition

  explicit Mesh(const PdesScenarioSpec& s)
      : spec(s), topo(s.tiles_x, s.tiles_y, /*cores_per_tile=*/1) {}

  [[nodiscard]] SimTime hop_transit() const {
    return hw.mesh_clock().cycles(hw.mesh_cycles_per_hop);
  }

  /// Content-jittered step cadence: at least one hop transit, at most ~8x
  /// that, so a lookahead-wide window holds a healthy batch of step events
  /// per partition without ever being empty.
  [[nodiscard]] SimTime step_delay(const Cell& cell, int step) const {
    const std::uint64_t h =
        mix64(spec.seed ^ (static_cast<std::uint64_t>(cell.rank) << 20) ^
              static_cast<std::uint64_t>(step));
    const std::uint64_t cycles =
        hw.mesh_cycles_per_hop + h % (7ULL * hw.mesh_cycles_per_hop);
    return hw.mesh_clock().cycles(cycles);
  }

  void deliver_halo(Cell& target, std::uint64_t value) {
    target.halo_acc = mix64(target.halo_acc ^ value);
    trace::Recorder* rec =
        recorders.empty()
            ? nullptr
            : recorders[static_cast<std::size_t>(target.partition)].get();
    if (rec != nullptr) {
      rec->instant(target.partition, "pdes", "halo",
                   pdes->partition(target.partition).now(),
                   strprintf("cell %d", target.rank));
    }
  }

  void step(Cell& cell) {
    sim::Engine& engine = pdes->partition(cell.partition);
    cell.value = mix64(cell.value ^ static_cast<std::uint64_t>(
                                        engine.now().femtoseconds()));
    // Boundary cells post their value to the facing cell across the slab
    // boundary. The facing tile is exactly one X hop away, so the transit
    // equals the lookahead -- the posted timestamp lands exactly on the
    // window horizon, the tightest legal case of the conservative contract.
    for (const int neighbor : {cell.east_neighbor, cell.west_neighbor}) {
      if (neighbor < 0) continue;
      Cell& target = cells[static_cast<std::size_t>(neighbor)];
      const SimTime when =
          engine.now() +
          hop_transit() * static_cast<std::uint64_t>(
                              topo.hops(cell.rank, target.rank));
      const std::uint64_t value = cell.value;
      Cell* target_ptr = &target;
      Mesh* mesh = this;
      pdes->post(cell.partition, target.partition, when,
                 [mesh, target_ptr, value] {
                   mesh->deliver_halo(*target_ptr, value);
                 });
    }
    if (--cell.steps_left == 0) return;
    Cell* self = &cell;
    Mesh* mesh = this;
    engine.schedule_call(engine.now() + step_delay(cell, cell.steps_left),
                         [mesh, self] { mesh->step(*self); });
  }
};

}  // namespace

Table PdesScenarioResult::to_table() const {
  Table table({"partition", "cells", "events", "end_fs", "checksum"});
  for (const PartitionRow& row : rows) {
    table.add_row(
        {strprintf("%d", row.partition), strprintf("%d", row.cells),
         strprintf("%llu", static_cast<unsigned long long>(row.events)),
         strprintf("%llu", static_cast<unsigned long long>(
                               row.end_time.femtoseconds())),
         strprintf("%016llx",
                   static_cast<unsigned long long>(row.checksum))});
  }
  return table;
}

PdesScenarioResult run_pdes_mesh(const PdesScenarioSpec& spec) {
  SCC_EXPECTS(spec.tiles_x >= 1 && spec.tiles_y >= 1);
  SCC_EXPECTS(spec.partitions >= 1 && spec.partitions <= spec.tiles_x);
  SCC_EXPECTS(spec.steps >= 1);

  Mesh mesh(spec);
  sim::PdesConfig config;
  config.partitions = spec.partitions;
  config.workers = spec.workers;
  config.lookahead =
      mesh.hop_transit() *
      static_cast<std::uint64_t>(std::max(
          1, mesh.topo.min_partition_separation_hops(spec.partitions)));
  sim::PdesEngine pdes(config);
  mesh.pdes = &pdes;

  if (spec.perturb) {
    // One derived seed per partition: each engine perturbs its own schedule
    // from its own stream, before anything is scheduled on it.
    for (int p = 0; p < spec.partitions; ++p) {
      pdes.partition(p).enable_perturbation(sim::PerturbConfig{
          mix64(spec.perturb_seed ^ static_cast<std::uint64_t>(p)),
          mesh.hw.mesh_clock().cycles(1)});
    }
  }
  if (spec.trace) {
    for (int p = 0; p < spec.partitions; ++p) {
      auto recorder = std::make_unique<trace::Recorder>();
      recorder->begin_run(strprintf("pdes partition %d", p));
      pdes.partition(p).set_trace(recorder.get());
      mesh.recorders.push_back(std::move(recorder));
    }
  }

  // Window-cadence flight recorder: one sample per conservative window,
  // taken by the coordinator thread between rounds (the window probe), so
  // reading the drain counters races nothing. The window sequence is a
  // function of the event timestamps alone -- identical for any worker
  // count -- and the nominal interval is the lookahead (the window width).
  std::optional<metrics::Sampler> sampler;
  if (spec.sample) {
    sampler.emplace(config.lookahead);
    sampler->set_label(strprintf("pdes_mesh %dx%d p=%d", spec.tiles_x,
                                 spec.tiles_y, spec.partitions));
    sim::PdesEngine* pdes_ptr = &pdes;
    sampler->add_column("pdes/events",
                        [pdes_ptr] { return pdes_ptr->events_processed(); });
    sampler->add_column("pdes/windows",
                        [pdes_ptr] { return pdes_ptr->stats().windows; });
    sampler->add_column("pdes/posts_delivered", [pdes_ptr] {
      return pdes_ptr->stats().posts_delivered;
    });
    sampler->add_column("pdes/max_window_events", [pdes_ptr] {
      return pdes_ptr->stats().max_window_events;
    });
    pdes.set_window_probe(
        [&sampler](SimTime horizon) { sampler->tick(horizon); });
  }

  // Build the cells and seed each partition's heap with the first steps.
  const int tiles = mesh.topo.num_tiles();
  mesh.cells.resize(static_cast<std::size_t>(tiles));
  for (int tile = 0; tile < tiles; ++tile) {
    Cell& cell = mesh.cells[static_cast<std::size_t>(tile)];
    cell.rank = tile;
    cell.partition = mesh.topo.partition_of(tile, spec.partitions);
    cell.value = mix64(spec.seed ^ static_cast<std::uint64_t>(tile));
    cell.steps_left = spec.steps;
    const noc::TileCoord at = mesh.topo.coord_of_tile(tile);
    if (at.x + 1 < spec.tiles_x) {
      const int east = tile + 1;
      if (mesh.topo.partition_of(east, spec.partitions) != cell.partition)
        cell.east_neighbor = east;
    }
    if (at.x > 0) {
      const int west = tile - 1;
      if (mesh.topo.partition_of(west, spec.partitions) != cell.partition)
        cell.west_neighbor = west;
    }
  }
  for (Cell& cell : mesh.cells) {
    Cell* self = &cell;
    Mesh* m = &mesh;
    pdes.partition(cell.partition)
        .schedule_call(mesh.step_delay(cell, 0),
                       [m, self] { m->step(*self); });
  }

  pdes.run();

  PdesScenarioResult result;
  if (sampler) result.timeseries = sampler->take();
  result.pdes = pdes.stats();
  result.engine = pdes.aggregated_stats();
  result.events = pdes.events_processed();
  result.halo_posts = pdes.stats().posts_delivered;
  result.end_time = pdes.now();
  result.rows.resize(static_cast<std::size_t>(spec.partitions));
  result.checksum = mix64(spec.seed);
  for (int p = 0; p < spec.partitions; ++p) {
    PdesScenarioResult::PartitionRow& row =
        result.rows[static_cast<std::size_t>(p)];
    row.partition = p;
    row.events = pdes.partition(p).events_processed();
    row.end_time = pdes.partition(p).now();
    row.checksum = mix64(static_cast<std::uint64_t>(p));
  }
  for (const Cell& cell : mesh.cells) {  // rank order: deterministic fold
    PdesScenarioResult::PartitionRow& row =
        result.rows[static_cast<std::size_t>(cell.partition)];
    ++row.cells;
    const std::uint64_t folded = mix64(cell.value ^ cell.halo_acc);
    row.checksum = mix64(row.checksum ^ folded);
    result.checksum = mix64(result.checksum ^ folded);
  }

  if (spec.trace) {
    std::ostringstream os;
    for (const auto& recorder : mesh.recorders)
      trace::write_chrome_json(*recorder, os);
    result.trace_json = os.str();
  }

  metrics::MetricsRegistry& metrics = result.metrics;
  metrics.set_label(strprintf("pdes_mesh %dx%d p=%d", spec.tiles_x,
                              spec.tiles_y, spec.partitions));
  metrics.set("pdes/events", result.events, metrics::Unit::kCount,
              /*invariant=*/true);
  metrics.set("pdes/halo_posts", result.halo_posts, metrics::Unit::kCount,
              /*invariant=*/true);
  metrics.set("pdes/windows", result.pdes.windows, metrics::Unit::kCount,
              /*invariant=*/true);
  metrics.set("pdes/max_window_events", result.pdes.max_window_events,
              metrics::Unit::kCount, /*invariant=*/true);
  // Introspection counters of the conservative drain itself (all functions
  // of the deterministic window sequence -- identical for any worker
  // count, so safe under the identity tests' metrics diff).
  metrics.set("pdes/saturated_windows", result.pdes.saturated_windows,
              metrics::Unit::kCount, /*invariant=*/true);
  metrics.set("pdes/max_window_posts", result.pdes.max_window_posts,
              metrics::Unit::kCount, /*invariant=*/true);
  metrics.set("pdes/posts_at_floor", result.pdes.posts_at_floor,
              metrics::Unit::kCount, /*invariant=*/true);
  if (result.pdes.min_post_slack < SimTime::max()) {
    metrics.set_time("pdes/min_post_slack", result.pdes.min_post_slack,
                     /*invariant=*/true);
  }
  metrics.set("pdes/checksum", result.checksum, metrics::Unit::kCount,
              /*invariant=*/true);
  metrics.set_time("pdes/end_time", result.end_time, /*invariant=*/true);
  for (const PdesScenarioResult::PartitionRow& row : result.rows) {
    const std::string prefix = strprintf("pdes/partition/%d/", row.partition);
    metrics.set(prefix + "events", row.events, metrics::Unit::kCount,
                /*invariant=*/true);
    metrics.set(prefix + "checksum", row.checksum, metrics::Unit::kCount,
                /*invariant=*/true);
    metrics.set_time(prefix + "end_time", row.end_time, /*invariant=*/true);
  }
  return result;
}

}  // namespace scc::harness
