// Experiment harness: runs one collective under one of the paper's six
// library variants on a fresh simulated SCC and reports the measured
// virtual-time latency (plus correctness verification and per-core
// profiles). Bench binaries and tests are thin wrappers over this.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "coll/algos.hpp"
#include "coll/block_split.hpp"
#include "coll/stack.hpp"
#include "machine/config.hpp"
#include "machine/profile.hpp"
#include "mem/cache.hpp"
#include "metrics/registry.hpp"
#include "metrics/sampler.hpp"
#include "rcce/rcce.hpp"
#include "trace/recorder.hpp"

namespace scc::harness {

/// The six graphs of Fig. 9 / bars of Fig. 10.
enum class PaperVariant {
  kRckmpi,       // RCKMPI baseline (MPI over the packetized channel)
  kBlocking,     // RCCE_comm on blocking RCCE (the paper's reference)
  kIrcce,        // + relaxed synchronization (Section IV-A)
  kLightweight,  // + lightweight non-blocking primitives (Section IV-B)
  kLwBalanced,   // + balanced block splitting (Section IV-C)
  kMpb,          // + MPB-direct Allreduce (Section IV-D; Allreduce only)
};

[[nodiscard]] constexpr std::string_view variant_name(PaperVariant v) {
  switch (v) {
    case PaperVariant::kRckmpi: return "rckmpi";
    case PaperVariant::kBlocking: return "blocking";
    case PaperVariant::kIrcce: return "ircce";
    case PaperVariant::kLightweight: return "lightweight";
    case PaperVariant::kLwBalanced: return "lw-balanced";
    case PaperVariant::kMpb: return "mpb";
  }
  return "?";
}

enum class Collective {
  kAllgather,
  kAlltoall,
  kReduceScatter,
  kBroadcast,
  kReduce,
  kAllreduce,
  // Beyond Fig. 9: the remaining RCCE_comm entry points. Not part of the
  // paper's evaluation (no RCKMPI counterpart is wired up), but fuzzed and
  // conformance-checked like the rest.
  kScatter,
  kGather,
  kAllgatherv,
};

[[nodiscard]] constexpr std::string_view collective_name(Collective c) {
  switch (c) {
    case Collective::kAllgather: return "allgather";
    case Collective::kAlltoall: return "alltoall";
    case Collective::kReduceScatter: return "reducescatter";
    case Collective::kBroadcast: return "broadcast";
    case Collective::kReduce: return "reduce";
    case Collective::kAllreduce: return "allreduce";
    case Collective::kScatter: return "scatter";
    case Collective::kGather: return "gather";
    case Collective::kAllgatherv: return "allgatherv";
  }
  return "?";
}

/// Variants plotted for a given collective in Fig. 9 (e.g. the balanced
/// variant only exists for the splitting collectives; MPB only for
/// Allreduce).
[[nodiscard]] std::vector<PaperVariant> variants_for(Collective c);

/// Maps the collectives that have an algorithm dimension (coll/algos.hpp)
/// onto coll::CollKind; nullopt for the rest (broadcast, reduce, ...).
[[nodiscard]] std::optional<coll::CollKind> algo_kind(Collective c);

struct RunSpec {
  Collective collective = Collective::kAllreduce;
  PaperVariant variant = PaperVariant::kBlocking;
  std::size_t elements = 552;  // vector size (doubles); Alltoall: per pair
  int repetitions = 4;         // measured repetitions (averaged)
  int warmup = 2;              // unmeasured cache-warming repetitions
  std::uint64_t seed = 42;
  bool verify = true;          // compare against a serial reference
  bool collect_profiles = false;
  /// When true, RunResult carries a full MetricsRegistry snapshot of every
  /// counter the machine produced (see metrics/collect.hpp for the path
  /// schema). Purely observational: collection happens after the simulation
  /// and never changes timing.
  bool collect_metrics = false;
  /// When true, RunResult carries a copy of every core's final output
  /// buffer (differential checkers compare them across stacks and seeds).
  bool capture_outputs = false;
  /// Forces the block-split policy regardless of what the variant implies
  /// (the conformance harness exercises every stack under both policies).
  std::optional<coll::SplitPolicy> split_override;
  /// Algorithm override for the collectives that have variants (allgather,
  /// alltoall, reducescatter, allreduce; see coll/algos.hpp). Unset = the
  /// paper's algorithm, so existing call sites and committed baselines are
  /// bit-identical; coll::Algo::kAuto = the Selector picks from
  /// (collective, n, p, prims). Only valid for the RCCE-family variants.
  std::optional<coll::Algo> algo;
  /// When nonzero, attaches a metrics::Sampler flight recorder at this
  /// simulated-time cadence for the whole run (warmup included): the
  /// standard machine columns (metrics::add_machine_columns) are snapshotted
  /// every interval and returned in RunResult::timeseries. Purely
  /// observational -- enabling sampling changes no simulated result byte.
  SimTime sample_interval = SimTime::zero();
  /// When non-null, the run is traced into this recorder: a new run scope
  /// labelled "<collective>/<variant> n=<elements>" is opened and the
  /// machine's phase intervals, scheduler instants and link windows are
  /// recorded (see trace/recorder.hpp). Tracing never changes timing.
  trace::Recorder* trace = nullptr;
  /// Runs the collective through the non-blocking API (coll/nbc.hpp): each
  /// repetition initiates an i*() request on a per-core ProgressEngine and
  /// drives it to completion with wait(). Only the RCCE-family variants
  /// (blocking/ircce/lightweight/lw-balanced) and the collectives with an
  /// i*() entry point (allgather, alltoall, broadcast, allreduce) support
  /// this; results must be identical to the blocking path.
  bool nonblocking = false;
  /// Progress-engine lanes when nonblocking (see coll/nbc.hpp). One lane is
  /// bit-identical to the blocking schedule; more lanes change the flag/MPB
  /// partitioning (and need a non-blocking stack). flags_per_core is raised
  /// automatically to cover the widest lane.
  int nbc_lanes = 1;
  /// Conservative-PDES drain threads for the machine (--workers=N). 0 keeps
  /// the serial single-engine machine (bit-identical to the pre-PDES path);
  /// N >= 1 shards the machine into tiles_x partitions drained by
  /// min(N, tiles_x) host threads. The partition count -- and therefore
  /// every simulated result and artifact byte -- is the same for EVERY
  /// N >= 1; only host wall-clock changes. Composes freely with the
  /// sweep/conformance --jobs executor. When > 0, overrides
  /// config.pdes_workers.
  int pdes_workers = 0;
  machine::SccConfig config = machine::SccConfig::paper_default();
};

struct RunResult {
  SimTime mean_latency;  // per-operation, measured on core 0
  SimTime min_latency;
  SimTime max_latency;
  bool verified = false;  // true when verify was requested and passed
  std::uint64_t events = 0;
  std::uint64_t lines_sent = 0;  // end-to-end MPB cache-line transfers
  std::uint64_t line_hops = 0;   // sum over links (volume x distance)
  std::vector<machine::CoreProfile> profiles;  // when collect_profiles
  /// Per-core private-memory cache counters (when collect_profiles).
  std::vector<mem::CacheStats> cache_stats;
  std::vector<std::vector<double>> outputs;    // when capture_outputs
  /// Absolute [start, end] of each measured repetition on core 0 -- the
  /// windows the latencies are sampled from; feed one to
  /// metrics::analyze_blame together with the run's trace.
  std::vector<std::pair<SimTime, SimTime>> sample_windows;
  /// Per-repetition measured latencies on core 0, in repetition order
  /// (mean/min/max above are derived from these). Always filled; feed them
  /// to a metrics::Histogram for tail-latency aggregation across runs.
  std::vector<SimTime> latencies;
  /// Full counter snapshot (when collect_metrics).
  std::optional<metrics::MetricsRegistry> metrics;
  /// Flight-recorder series (when sample_interval was nonzero).
  std::optional<metrics::TimeSeries> timeseries;
};

/// Runs the experiment on a fresh machine. Throws std::runtime_error on
/// simulation deadlock and on verification failure.
[[nodiscard]] RunResult run_collective(const RunSpec& spec);

}  // namespace scc::harness
