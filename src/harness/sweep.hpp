// Sweep driver: regenerates one Fig. 9 panel (latency vs. vector size for
// every variant of a collective) and derives the paper's summary speedup
// statistics from it.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "harness/runner.hpp"
#include "metrics/histogram.hpp"

namespace scc::harness {

struct SweepSpec {
  Collective collective = Collective::kAllreduce;
  std::size_t from = 500;
  std::size_t to = 700;
  std::size_t step = 4;
  int repetitions = 3;
  int warmup = 1;
  std::uint64_t seed = 42;
  bool verify = true;  // verify every point (slower; benches verify once)
  machine::SccConfig config = machine::SccConfig::paper_default();
  /// Empty = the paper's variant set for this collective.
  std::vector<PaperVariant> variants;
  /// When non-null, every (size, variant) run is traced into this recorder
  /// as its own run scope (one trace file can hold the whole sweep).
  trace::Recorder* trace = nullptr;
  /// When true, SweepResult::metrics holds every point's counter snapshot,
  /// each under the prefix "point/<elements>/<variant>/".
  bool collect_metrics = false;
  /// Host worker threads for the (size x variant) grid: 1 = serial, 0 =
  /// exec::default_jobs(). Each grid cell simulates on its own machine and
  /// results are merged in spec order, so the output -- tables, CSV bytes,
  /// absorbed metrics -- is identical for every jobs value. A non-null
  /// `trace` recorder is shared mutable state and forces serial execution.
  int jobs = 1;
  /// PDES drain threads *inside* each grid cell's machine (--workers=N;
  /// RunSpec::pdes_workers). 0 = serial machines. Orthogonal to `jobs`:
  /// jobs parallelizes across cells, workers within one, and every
  /// (jobs, workers) combination produces byte-identical output.
  int pdes_workers = 0;
};

struct SweepPoint {
  std::size_t elements = 0;
  std::vector<double> latency_us;  // one per variant, in sweep order
};

struct SweepResult {
  std::vector<PaperVariant> variants;
  std::vector<SweepPoint> points;
  /// All points' snapshots (when SweepSpec::collect_metrics), prefixed
  /// "point/<elements>/<variant>/".
  metrics::MetricsRegistry metrics;
  /// Per-variant tail-latency histogram over EVERY measured repetition of
  /// EVERY size in the sweep (femtosecond values), merged in spec order --
  /// byte-identical output for any jobs value (Histogram::merge is exact).
  std::vector<metrics::Histogram> histograms;  // one per variant, same order

  /// Mean over the sweep of (blocking latency / variant latency) -- the
  /// paper's "average speedup relative to the RCCE_comm baseline".
  [[nodiscard]] double mean_speedup_vs_blocking(PaperVariant v) const;
  /// Maximum pointwise speedup and where it occurs.
  [[nodiscard]] std::pair<double, std::size_t> max_speedup_vs_blocking(
      PaperVariant v) const;
  [[nodiscard]] double mean_latency_us(PaperVariant v) const;

  /// size column + one latency column per variant (microseconds).
  [[nodiscard]] Table to_table() const;
};

[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec);

}  // namespace scc::harness
