#include "harness/runner.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/mpb_allreduce.hpp"
#include "coll/nbc.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "machine/scc_machine.hpp"
#include "metrics/collect.hpp"
#include "rckmpi/mpi.hpp"

namespace scc::harness {

namespace {

constexpr int kRoot = 0;  // root used by Reduce/Broadcast experiments

/// Shared by the trace run scope and the metrics snapshot label. The algo
/// suffix only appears when an override is set, so labels of existing runs
/// (and the baselines keyed on them) are unchanged.
std::string run_label(const RunSpec& spec) {
  std::string label =
      strprintf("%s/%s n=%zu",
                std::string(collective_name(spec.collective)).c_str(),
                std::string(variant_name(spec.variant)).c_str(),
                spec.elements);
  if (spec.algo) {
    label += strprintf(" algo=%s",
                       std::string(coll::algo_name(*spec.algo)).c_str());
  }
  if (spec.nonblocking) {
    label += strprintf(" nbc lanes=%d", spec.nbc_lanes);
  }
  if (!spec.config.faults.empty()) {
    label += strprintf(" faults=%s", spec.config.faults.to_string().c_str());
  }
  return label;
}

struct CoreData {
  aligned_vector<double> in;
  aligned_vector<double> out;
  std::vector<SimTime> samples;  // filled by rank 0
  std::vector<std::pair<SimTime, SimTime>> windows;  // rank 0, absolute
  int owned_block = -1;          // ReduceScatter result block
  std::vector<std::size_t> agv_counts;  // Allgatherv per-core counts
};

/// Integer-valued inputs: ring and tree reduction orders then agree
/// bit-for-bit with the serial reference (sums stay far below 2^53).
void fill_input(aligned_vector<double>& v, std::uint64_t seed, int rank) {
  Xoshiro256 rng(seed * 1000003 + static_cast<std::uint64_t>(rank));
  for (double& x : v) x = static_cast<double>(rng.below(1000));
}

struct Buffers {
  std::size_t in_elems = 0;
  std::size_t out_elems = 0;
};

Buffers buffer_sizes(Collective c, std::size_t n, int p) {
  switch (c) {
    case Collective::kAllgather:
      return {n, n * static_cast<std::size_t>(p)};
    case Collective::kAlltoall:
      return {n * static_cast<std::size_t>(p), n * static_cast<std::size_t>(p)};
    case Collective::kReduceScatter:
    case Collective::kBroadcast:
    case Collective::kReduce:
    case Collective::kAllreduce:
      return {n, n};
    case Collective::kScatter:
      // Every rank allocates the root-sized send buffer; only the root's
      // contents matter, but uniform sizing keeps the setup loop simple.
      return {n * static_cast<std::size_t>(p), n};
    case Collective::kGather:
      return {n, n * static_cast<std::size_t>(p)};
    case Collective::kAllgatherv:
      return {0, 0};  // per-rank sizes; run_collective sizes these itself
  }
  return {n, n};
}

/// Deterministic irregular decomposition for Allgatherv: per-core counts in
/// [0, n] drawn from the run seed (shared by setup and verification).
std::vector<std::size_t> allgatherv_counts(std::uint64_t seed, int p,
                                           std::size_t n) {
  Xoshiro256 rng(seed ^ 0xa11647e7'0a11647eULL);
  std::vector<std::size_t> counts(static_cast<std::size_t>(p));
  bool any = false;
  for (auto& c : counts) {
    c = rng.below(n + 1);
    any = any || c > 0;
  }
  if (!any) counts[0] = n > 0 ? n : 1;  // keep the gathered vector non-empty
  return counts;
}

coll::Prims prims_of(PaperVariant v) {
  switch (v) {
    case PaperVariant::kBlocking: return coll::Prims::kBlocking;
    case PaperVariant::kIrcce: return coll::Prims::kIrcce;
    default: return coll::Prims::kLightweight;
  }
}

coll::SplitPolicy split_of(PaperVariant v) {
  return (v == PaperVariant::kLwBalanced || v == PaperVariant::kMpb)
             ? coll::SplitPolicy::kBalanced
             : coll::SplitPolicy::kStandard;
}

coll::SplitPolicy effective_split(const RunSpec& spec) {
  return spec.split_override.value_or(split_of(spec.variant));
}

/// One invocation of the collective under test, RCCE-family variants.
sim::Task<> run_op_rcce(coll::Stack& stack, coll::MpbAllreduce* mpb,
                        const RunSpec& spec, CoreData& data) {
  const coll::SplitPolicy split = effective_split(spec);
  const auto algo = [&](coll::CollKind kind) {
    return spec.algo.value_or(coll::paper_algo(kind));
  };
  switch (spec.collective) {
    case Collective::kAllgather:
      co_await coll::allgather(stack, data.in, data.out,
                               algo(coll::CollKind::kAllgather));
      co_return;
    case Collective::kAlltoall:
      co_await coll::alltoall(stack, data.in, data.out,
                              algo(coll::CollKind::kAlltoall));
      co_return;
    case Collective::kReduceScatter:
      data.owned_block = co_await coll::reduce_scatter(
          stack, data.in, data.out, coll::ReduceOp::kSum, split,
          algo(coll::CollKind::kReduceScatter));
      co_return;
    case Collective::kBroadcast:
      co_await coll::broadcast(stack, data.out, kRoot, split);
      co_return;
    case Collective::kReduce:
      co_await coll::reduce(stack, data.in, data.out, coll::ReduceOp::kSum,
                            kRoot, split);
      co_return;
    case Collective::kAllreduce:
      if (spec.variant == PaperVariant::kMpb) {
        co_await mpb->run(data.in, data.out, coll::ReduceOp::kSum, split);
      } else {
        co_await coll::allreduce(stack, data.in, data.out,
                                 coll::ReduceOp::kSum, split,
                                 algo(coll::CollKind::kAllreduce));
      }
      co_return;
    case Collective::kScatter:
      co_await coll::scatter(stack, data.in, data.out, kRoot);
      co_return;
    case Collective::kGather:
      co_await coll::gather(stack, data.in, data.out, kRoot);
      co_return;
    case Collective::kAllgatherv:
      co_await coll::allgatherv(stack, data.in, data.agv_counts, data.out);
      co_return;
  }
}

/// One invocation through the non-blocking API: initiate, then drive the
/// engine to completion. Single-request wait() at one lane replays the
/// blocking wire schedule exactly; the value of this path is exercising the
/// full initiate/progress/complete machinery under the harness' verify,
/// metrics and perturbation plumbing.
sim::Task<> run_op_nbc(coll::nbc::ProgressEngine& engine, const RunSpec& spec,
                       CoreData& data) {
  const coll::SplitPolicy split = effective_split(spec);
  const auto algo = [&](coll::CollKind kind) {
    return spec.algo.value_or(coll::paper_algo(kind));
  };
  coll::nbc::CollRequest req;
  switch (spec.collective) {
    case Collective::kAllgather:
      req = engine.iallgather(data.in, data.out,
                              algo(coll::CollKind::kAllgather));
      break;
    case Collective::kAlltoall:
      req = engine.ialltoall(data.in, data.out,
                             algo(coll::CollKind::kAlltoall));
      break;
    case Collective::kBroadcast:
      req = engine.ibcast(data.out, kRoot, split);
      break;
    case Collective::kAllreduce:
      req = engine.iallreduce(data.in, data.out, coll::ReduceOp::kSum, split,
                              algo(coll::CollKind::kAllreduce));
      break;
    default:
      SCC_ASSERT(false);  // rejected up front by run_collective
  }
  co_await req.wait();
}

sim::Task<> run_op_mpi(rckmpi::Mpi& mpi, const RunSpec& spec,
                       CoreData& data) {
  switch (spec.collective) {
    case Collective::kAllgather:
      co_await mpi.allgather(data.in, data.out);
      co_return;
    case Collective::kAlltoall:
      co_await mpi.alltoall(data.in, data.out);
      co_return;
    case Collective::kReduceScatter:
      data.owned_block = co_await mpi.reduce_scatter(data.in, data.out,
                                                     rckmpi::ReduceOp::kSum);
      co_return;
    case Collective::kBroadcast:
      co_await mpi.bcast(data.out, kRoot);
      co_return;
    case Collective::kReduce:
      co_await mpi.reduce(data.in, data.out, rckmpi::ReduceOp::kSum, kRoot);
      co_return;
    case Collective::kAllreduce:
      co_await mpi.allreduce(data.in, data.out, rckmpi::ReduceOp::kSum);
      co_return;
    case Collective::kScatter:
    case Collective::kGather:
    case Collective::kAllgatherv:
      // Not in variants_for() for the RCKMPI baseline; unreachable.
      SCC_ASSERT(false);
      co_return;
  }
}

sim::Task<> core_program(machine::CoreApi& api, const rcce::Layout& layout,
                         const rckmpi::ChannelLayout* mpi_layout,
                         const RunSpec& spec, CoreData& data) {
  // Persistent per-core communication objects (the MPB Allreduce keeps
  // handshake sequence state across repetitions by design).
  coll::Stack stack(api, layout, prims_of(spec.variant));
  coll::MpbAllreduce mpb(api, layout);
  std::optional<rckmpi::Mpi> mpi;
  if (spec.variant == PaperVariant::kRckmpi) {
    SCC_ASSERT(mpi_layout != nullptr);
    mpi.emplace(api, *mpi_layout);
  }
  std::optional<coll::nbc::ProgressEngine> engine;
  if (spec.nonblocking) {
    engine.emplace(api, prims_of(spec.variant), spec.nbc_lanes);
  }
  const int total = spec.warmup + spec.repetitions;
  for (int rep = 0; rep < total; ++rep) {
    co_await api.sync_barrier();
    const SimTime start = api.now();
    if (engine) {
      co_await run_op_nbc(*engine, spec, data);
    } else if (mpi) {
      co_await run_op_mpi(*mpi, spec, data);
    } else {
      co_await run_op_rcce(stack, &mpb, spec, data);
    }
    if (api.rank() == 0 && rep >= spec.warmup) {
      data.samples.push_back(api.now() - start);
      data.windows.emplace_back(start, api.now());
    }
  }
  co_await api.sync_barrier();
}

void verify_results(const RunSpec& spec, int p,
                    const std::vector<CoreData>& data) {
  const std::size_t n = spec.elements;
  const auto fail = [&](const std::string& what) {
    throw std::runtime_error(
        strprintf("verification failed (%s/%s, n=%zu): %s",
                  std::string(collective_name(spec.collective)).c_str(),
                  std::string(variant_name(spec.variant)).c_str(), n,
                  what.c_str()));
  };
  const auto expect_eq = [&](double got, double want, const char* where) {
    if (got != want) {
      fail(strprintf("%s: got %.17g want %.17g", where, got, want));
    }
  };
  switch (spec.collective) {
    case Collective::kAllgather: {
      for (int r = 0; r < p; ++r)
        for (int src = 0; src < p; ++src)
          for (std::size_t i = 0; i < n; ++i)
            expect_eq(data[static_cast<std::size_t>(r)]
                          .out[static_cast<std::size_t>(src) * n + i],
                      data[static_cast<std::size_t>(src)].in[i], "allgather");
      return;
    }
    case Collective::kAlltoall: {
      for (int r = 0; r < p; ++r)
        for (int src = 0; src < p; ++src)
          for (std::size_t i = 0; i < n; ++i)
            expect_eq(data[static_cast<std::size_t>(r)]
                          .out[static_cast<std::size_t>(src) * n + i],
                      data[static_cast<std::size_t>(src)]
                          .in[static_cast<std::size_t>(r) * n + i],
                      "alltoall");
      return;
    }
    case Collective::kBroadcast: {
      for (int r = 0; r < p; ++r)
        for (std::size_t i = 0; i < n; ++i)
          expect_eq(data[static_cast<std::size_t>(r)].out[i],
                    data[kRoot].in[i], "broadcast");
      return;
    }
    case Collective::kScatter: {
      for (int r = 0; r < p; ++r)
        for (std::size_t i = 0; i < n; ++i)
          expect_eq(data[static_cast<std::size_t>(r)].out[i],
                    data[kRoot].in[static_cast<std::size_t>(r) * n + i],
                    "scatter");
      return;
    }
    case Collective::kGather: {
      for (int src = 0; src < p; ++src)
        for (std::size_t i = 0; i < n; ++i)
          expect_eq(data[kRoot].out[static_cast<std::size_t>(src) * n + i],
                    data[static_cast<std::size_t>(src)].in[i], "gather");
      return;
    }
    case Collective::kAllgatherv: {
      const auto counts = allgatherv_counts(spec.seed, p, n);
      for (int r = 0; r < p; ++r) {
        std::size_t offset = 0;
        for (int src = 0; src < p; ++src) {
          for (std::size_t i = 0; i < counts[static_cast<std::size_t>(src)];
               ++i)
            expect_eq(data[static_cast<std::size_t>(r)].out[offset + i],
                      data[static_cast<std::size_t>(src)].in[i], "allgatherv");
          offset += counts[static_cast<std::size_t>(src)];
        }
      }
      return;
    }
    case Collective::kReduce:
    case Collective::kAllreduce:
    case Collective::kReduceScatter: {
      std::vector<double> want(n, 0.0);
      for (int src = 0; src < p; ++src)
        for (std::size_t i = 0; i < n; ++i)
          want[i] += data[static_cast<std::size_t>(src)].in[i];
      if (spec.collective == Collective::kReduce) {
        for (std::size_t i = 0; i < n; ++i)
          expect_eq(data[kRoot].out[i], want[i], "reduce@root");
      } else if (spec.collective == Collective::kAllreduce) {
        for (int r = 0; r < p; ++r)
          for (std::size_t i = 0; i < n; ++i)
            expect_eq(data[static_cast<std::size_t>(r)].out[i], want[i],
                      "allreduce");
      } else {
        const coll::SplitPolicy policy =
            spec.variant == PaperVariant::kRckmpi ? coll::SplitPolicy::kBalanced
                                                  : effective_split(spec);
        // Both stacks' ring direction leaves core i owning block (i+1)%p.
        const auto blocks = coll::split_blocks(n, p, policy);
        for (int r = 0; r < p; ++r) {
          const int ob = data[static_cast<std::size_t>(r)].owned_block;
          if (ob < 0 || ob >= p) fail("reducescatter: no owned block");
          const coll::Block& b = blocks[static_cast<std::size_t>(ob)];
          for (std::size_t i = b.offset; i < b.offset + b.count; ++i)
            expect_eq(data[static_cast<std::size_t>(r)].out[i], want[i],
                      "reducescatter");
        }
      }
      return;
    }
  }
}

}  // namespace

std::vector<PaperVariant> variants_for(Collective c) {
  switch (c) {
    case Collective::kAllgather:
    case Collective::kAlltoall:
      return {PaperVariant::kRckmpi, PaperVariant::kBlocking,
              PaperVariant::kIrcce, PaperVariant::kLightweight};
    case Collective::kScatter:
    case Collective::kGather:
    case Collective::kAllgatherv:
      // RCCE-family only: RCKMPI has no counterpart wired up, and neither
      // split policy nor the MPB path applies.
      return {PaperVariant::kBlocking, PaperVariant::kIrcce,
              PaperVariant::kLightweight};
    case Collective::kReduceScatter:
    case Collective::kBroadcast:
    case Collective::kReduce:
      return {PaperVariant::kRckmpi, PaperVariant::kBlocking,
              PaperVariant::kIrcce, PaperVariant::kLightweight,
              PaperVariant::kLwBalanced};
    case Collective::kAllreduce:
      return {PaperVariant::kRckmpi,      PaperVariant::kBlocking,
              PaperVariant::kIrcce,       PaperVariant::kLightweight,
              PaperVariant::kLwBalanced,  PaperVariant::kMpb};
  }
  return {};
}

std::optional<coll::CollKind> algo_kind(Collective c) {
  switch (c) {
    case Collective::kAllgather: return coll::CollKind::kAllgather;
    case Collective::kAlltoall: return coll::CollKind::kAlltoall;
    case Collective::kReduceScatter: return coll::CollKind::kReduceScatter;
    case Collective::kAllreduce: return coll::CollKind::kAllreduce;
    default: return std::nullopt;
  }
}

RunResult run_collective(const RunSpec& spec) {
  if (spec.variant == PaperVariant::kMpb &&
      spec.collective != Collective::kAllreduce) {
    throw std::runtime_error(
        "the MPB-direct variant exists only for Allreduce (paper IV-D)");
  }
  if (spec.algo) {
    // Algorithm overrides exist on the Stack-based (RCCE-family) paths
    // only: RCKMPI and the MPB-direct Allreduce have their own schedules.
    if (spec.variant == PaperVariant::kRckmpi ||
        spec.variant == PaperVariant::kMpb) {
      throw std::runtime_error(strprintf(
          "--algo is not supported for the %s variant",
          std::string(variant_name(spec.variant)).c_str()));
    }
    const auto kind = algo_kind(spec.collective);
    if (!kind) {
      throw std::runtime_error(strprintf(
          "%s has no algorithm variants",
          std::string(collective_name(spec.collective)).c_str()));
    }
    if (*spec.algo != coll::Algo::kAuto &&
        !coll::algo_valid_for(*kind, *spec.algo)) {
      throw std::runtime_error(strprintf(
          "algorithm %s is not implemented for %s",
          std::string(coll::algo_name(*spec.algo)).c_str(),
          std::string(collective_name(spec.collective)).c_str()));
    }
  }
  if (spec.nonblocking) {
    if (spec.variant == PaperVariant::kRckmpi ||
        spec.variant == PaperVariant::kMpb) {
      throw std::runtime_error(strprintf(
          "--nbc is not supported for the %s variant (no i*() entry point)",
          std::string(variant_name(spec.variant)).c_str()));
    }
    switch (spec.collective) {
      case Collective::kAllgather:
      case Collective::kAlltoall:
      case Collective::kBroadcast:
      case Collective::kAllreduce:
        break;
      default:
        throw std::runtime_error(strprintf(
            "%s has no non-blocking entry point (coll/nbc.hpp)",
            std::string(collective_name(spec.collective)).c_str()));
    }
    if (spec.nbc_lanes < 1) {
      throw std::runtime_error("--nbc-lanes must be >= 1");
    }
    if (spec.nbc_lanes > 1 && spec.variant == PaperVariant::kBlocking) {
      throw std::runtime_error(
          "the blocking stack cannot interleave lanes (its synchronous "
          "handshake has no poll-and-yield completion); use --nbc-lanes=1");
    }
  }
  SCC_EXPECTS(spec.repetitions >= 1);

  machine::SccConfig config = spec.config;
  if (spec.pdes_workers > 0) config.pdes_workers = spec.pdes_workers;
  const int p = config.num_cores();
  rcce::Layout layout(p);
  int flags_needed = layout.flags_needed();
  if (spec.nonblocking) {
    // The widest lane's flag range bounds the engine's whole flag use.
    flags_needed = std::max(
        flags_needed,
        rcce::Layout::lane(p, spec.nbc_lanes - 1, spec.nbc_lanes)
            .flags_needed());
  }
  std::optional<rckmpi::ChannelLayout> mpi_layout;
  if (spec.variant == PaperVariant::kRckmpi) {
    mpi_layout.emplace(layout);
    flags_needed = mpi_layout->flags_needed();
  }
  config.flags_per_core = std::max(config.flags_per_core, flags_needed);
  machine::SccMachine machine(config);
  if (spec.trace) {
    spec.trace->begin_run(run_label(spec));
    machine.attach_trace(spec.trace);
  }
  std::optional<metrics::Sampler> sampler;
  if (spec.sample_interval > SimTime::zero()) {
    if (machine.partitions() > 1) {
      // Partitioned machine: no single engine owns the clock, so the
      // sampler is ticked externally at PDES window barriers (the only
      // globally consistent instants). The window schedule is a pure
      // function of (config, lookahead) -- worker-count-invariant, so the
      // timeseries artifact is too.
      sampler.emplace(SimTime::zero());
      sampler->set_label(run_label(spec));
      metrics::add_machine_columns(machine, *sampler);
      machine.pdes().set_window_probe(
          [&s = *sampler](SimTime t) { s.tick(t); });
    } else {
      sampler.emplace(spec.sample_interval);
      sampler->set_label(run_label(spec));
      metrics::add_machine_columns(machine, *sampler);
      sampler->attach(machine.engine());
    }
  }

  const Buffers sizes = buffer_sizes(spec.collective, spec.elements, p);
  std::vector<std::size_t> agv_counts;
  std::size_t agv_total = 0;
  if (spec.collective == Collective::kAllgatherv) {
    agv_counts = allgatherv_counts(spec.seed, p, spec.elements);
    for (const std::size_t c : agv_counts) agv_total += c;
  }
  std::vector<CoreData> data(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& d = data[static_cast<std::size_t>(r)];
    if (spec.collective == Collective::kAllgatherv) {
      d.agv_counts = agv_counts;
      d.in.resize(agv_counts[static_cast<std::size_t>(r)]);
      d.out.resize(agv_total, 0.0);
    } else {
      d.in.resize(sizes.in_elems);
      d.out.resize(sizes.out_elems, 0.0);
    }
    fill_input(d.in, spec.seed, r);
    if (spec.collective == Collective::kBroadcast && r == kRoot) {
      d.out = d.in;  // the root broadcasts its own data in place
    }
  }

  for (int r = 0; r < p; ++r) {
    machine.launch(
        r, core_program(machine.core(r), layout,
                        mpi_layout ? &*mpi_layout : nullptr, spec,
                        data[static_cast<std::size_t>(r)]));
  }
  machine.run();

  if (spec.verify) verify_results(spec, p, data);

  RunResult result;
  const auto& samples = data[0].samples;
  SCC_ASSERT(samples.size() == static_cast<std::size_t>(spec.repetitions));
  SimTime sum, min_s = SimTime::max(), max_s;
  for (const SimTime s : samples) {
    sum += s;
    min_s = std::min(min_s, s);
    max_s = std::max(max_s, s);
  }
  result.mean_latency =
      SimTime{sum.femtoseconds() / static_cast<std::uint64_t>(samples.size())};
  result.min_latency = min_s;
  result.max_latency = max_s;
  result.verified = spec.verify;
  result.events = machine.events_processed();
  const noc::TrafficMatrix traffic = machine.merged_traffic();
  result.lines_sent = traffic.total_lines_sent();
  result.line_hops = traffic.total_line_hops();
  result.sample_windows = data[0].windows;
  result.latencies = samples;
  if (sampler) {
    if (machine.partitions() > 1) {
      machine.pdes().set_window_probe({});
    } else {
      machine.engine().clear_probe();
    }
    result.timeseries = sampler->take();
  }
  if (spec.capture_outputs) {
    result.outputs.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const auto& out = data[static_cast<std::size_t>(r)].out;
      result.outputs.emplace_back(out.begin(), out.end());
    }
  }
  if (spec.collect_profiles) {
    result.profiles.reserve(static_cast<std::size_t>(p));
    result.cache_stats.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      result.profiles.push_back(machine.core(r).profile());
      result.cache_stats.push_back(machine.cache(r).stats());
    }
  }
  if (spec.collect_metrics) {
    result.metrics.emplace();
    result.metrics->set_label(run_label(spec));
    metrics::collect_machine(machine, *result.metrics);
    if (machine.partitions() > 1) {
      // Real-workload PDES introspection (pdes/windows, posts, slack...):
      // only meaningful -- and only emitted -- when the machine actually
      // ran partitioned, so serial metrics artifacts are unchanged.
      metrics::collect_pdes(machine.pdes(), *result.metrics);
    }
    if (mpi_layout) {
      metrics::collect_channel(mpi_layout->stats(), *result.metrics);
    }
    result.metrics->set_time("run/mean_latency_fs", result.mean_latency);
    result.metrics->set_time("run/min_latency_fs", result.min_latency);
    result.metrics->set_time("run/max_latency_fs", result.max_latency);
    result.metrics->set("run/repetitions",
                        static_cast<std::uint64_t>(spec.repetitions));
    result.metrics->set("run/lines_sent", result.lines_sent,
                        metrics::Unit::kCount, /*invariant=*/true);
    result.metrics->set("run/line_hops", result.line_hops,
                        metrics::Unit::kCount, /*invariant=*/true);
  }
  return result;
}

}  // namespace scc::harness
