#include "harness/conformance.hpp"

#include <iterator>
#include <stdexcept>
#include <vector>

#include "common/string_util.hpp"
#include "exec/executor.hpp"

namespace scc::harness {

namespace {

PaperVariant variant_of(coll::Prims prims) {
  switch (prims) {
    case coll::Prims::kBlocking: return PaperVariant::kBlocking;
    case coll::Prims::kIrcce: return PaperVariant::kIrcce;
    case coll::Prims::kLightweight: return PaperVariant::kLightweight;
  }
  return PaperVariant::kBlocking;
}

/// The concrete algorithm every run of this configuration uses, or nullopt
/// for the paper default. kAuto is resolved here, once, prims-independently
/// (with the lightweight layer's selector inputs), so the three stacks run
/// the same schedule and their full output buffers stay comparable.
std::optional<coll::Algo> resolved_algo(const ConformanceSpec& spec) {
  if (!spec.algo) return std::nullopt;
  if (*spec.algo != coll::Algo::kAuto) return spec.algo;
  const auto kind = algo_kind(spec.collective);
  if (!kind) {
    throw std::runtime_error(strprintf(
        "%s has no algorithm variants",
        std::string(collective_name(spec.collective)).c_str()));
  }
  const int p = spec.tiles_x * spec.tiles_y * spec.cores_per_tile;
  return coll::select_algo(*kind, spec.elements, p,
                           coll::Prims::kLightweight);
}

RunSpec base_run_spec(const ConformanceSpec& spec, coll::Prims prims,
                      std::optional<coll::Algo> algo) {
  RunSpec run;
  run.collective = spec.collective;
  run.variant = variant_of(prims);
  run.elements = spec.elements;
  run.repetitions = spec.repetitions;
  run.warmup = spec.warmup;
  run.seed = spec.engine_seed;
  run.verify = true;  // every run is also checked against the serial model
  run.capture_outputs = true;
  run.collect_metrics = spec.compare_metrics;
  run.split_override = spec.split;
  run.algo = algo;
  run.trace = spec.trace;
  run.config.tiles_x = spec.tiles_x;
  run.config.tiles_y = spec.tiles_y;
  run.config.cores_per_tile = spec.cores_per_tile;
  run.config.cost.hw.model_link_contention = spec.model_contention;
  run.config.faults = spec.faults;
  run.pdes_workers = spec.pdes_workers;
  return run;
}

/// Collectives with an MPI counterpart wired into run_op_mpi.
bool mpi_supported(Collective c) {
  switch (c) {
    case Collective::kAllgather:
    case Collective::kAlltoall:
    case Collective::kReduceScatter:
    case Collective::kBroadcast:
    case Collective::kReduce:
    case Collective::kAllreduce:
      return true;
    default:
      return false;
  }
}

/// Collectives whose full output buffers are value-deterministic across
/// DIFFERENT schedules (every element is defined, and integer inputs make
/// all reduction orders bit-equal), so cells running foreign schedules
/// (RCKMPI) can still be cross-checked against the RCCE reference.
bool value_deterministic(Collective c) {
  switch (c) {
    case Collective::kAllgather:
    case Collective::kAlltoall:
    case Collective::kBroadcast:
    case Collective::kAllreduce:
      return true;
    default:
      return false;
  }
}

/// Collectives with a non-blocking i*() entry point (coll/nbc.hpp).
bool nbc_supported(Collective c) {
  switch (c) {
    case Collective::kAllgather:
    case Collective::kAlltoall:
    case Collective::kBroadcast:
    case Collective::kAllreduce:
      return true;
    default:
      return false;
  }
}

/// One column of the conformance matrix: a named base RunSpec plus whether
/// its baseline outputs join the cross-stack full-buffer diff.
struct Cell {
  std::string name;
  RunSpec run;
  bool cross_check;
};

std::vector<Cell> build_cells(const ConformanceSpec& spec,
                              std::optional<coll::Algo> algo) {
  std::vector<Cell> cells;
  for (const coll::Prims prims : coll::kAllPrims) {
    cells.push_back(Cell{std::string(coll::prims_name(prims)),
                         base_run_spec(spec, prims, algo),
                         /*cross_check=*/true});
  }
  if (spec.check_rckmpi && !algo && mpi_supported(spec.collective)) {
    RunSpec run = base_run_spec(spec, coll::Prims::kBlocking, std::nullopt);
    run.variant = PaperVariant::kRckmpi;
    cells.push_back(
        Cell{"rckmpi", run, value_deterministic(spec.collective)});
  }
  if (spec.check_nbc && nbc_supported(spec.collective)) {
    for (const coll::Prims prims : coll::kAllPrims) {
      RunSpec run = base_run_spec(spec, prims, algo);
      run.nonblocking = true;
      run.nbc_lanes = 1;
      cells.push_back(Cell{std::string(coll::prims_name(prims)) + "-nbc",
                           run, /*cross_check=*/true});
    }
  }
  return cells;
}

/// First differing (core, element) pair, or empty when identical.
std::string diff_outputs(const std::vector<std::vector<double>>& got,
                         const std::vector<std::vector<double>>& want) {
  if (got.size() != want.size())
    return strprintf("output core count %zu != baseline %zu", got.size(),
                     want.size());
  for (std::size_t r = 0; r < got.size(); ++r) {
    if (got[r].size() != want[r].size())
      return strprintf("core %zu output size %zu != baseline %zu", r,
                       got[r].size(), want[r].size());
    for (std::size_t i = 0; i < got[r].size(); ++i) {
      if (got[r][i] != want[r][i])
        return strprintf("core %zu element %zu: got %.17g baseline %.17g", r,
                         i, got[r][i], want[r][i]);
    }
  }
  return {};
}

}  // namespace

std::string ConformanceFailure::replay() const {
  std::string where = stack + " engine_seed=" + std::to_string(engine_seed);
  where += perturb_seed
               ? " perturb_seed=" + std::to_string(*perturb_seed)
               : std::string(" unperturbed");
  return where + ": " + what;
}

std::string ConformanceReport::summary() const {
  std::string s = configuration + ": " + std::to_string(runs) + " runs, ";
  if (passed()) return s + "all conformant";
  s += std::to_string(failures.size()) + " failure(s)";
  for (const ConformanceFailure& f : failures) s += "\n  " + f.replay();
  return s;
}

ConformanceReport run_conformance(const ConformanceSpec& spec) {
  SCC_EXPECTS(spec.perturb_seeds >= 1);
  SCC_EXPECTS(spec.tiles_x >= 1 && spec.tiles_y >= 1);
  SCC_EXPECTS(spec.cores_per_tile >= 1);
  SCC_EXPECTS(spec.jobs >= 0);
  const std::optional<coll::Algo> algo = resolved_algo(spec);

  ConformanceReport report;
  // The mesh's "x<cores_per_tile>" and the " algo=" suffix only appear for
  // non-default values, keeping historical configuration lines unchanged.
  report.configuration = strprintf(
      "%s n=%zu mesh=%dx%d%s split=%s delay=%llufs",
      std::string(collective_name(spec.collective)).c_str(), spec.elements,
      spec.tiles_x, spec.tiles_y,
      spec.cores_per_tile == 2
          ? ""
          : strprintf("x%d", spec.cores_per_tile).c_str(),
      spec.split == coll::SplitPolicy::kBalanced ? "balanced" : "standard",
      static_cast<unsigned long long>(spec.max_delay_fs));
  if (algo) {
    report.configuration +=
        strprintf(" algo=%s", std::string(coll::algo_name(*algo)).c_str());
  }
  if (!spec.faults.empty()) {
    report.configuration +=
        strprintf(" faults=%s", spec.faults.to_string().c_str());
  }

  // Execution phase: the whole cell x (1 baseline + K perturbed) matrix
  // is one flat job list of independent simulations (each on its own
  // machine). Outcomes -- results or thrown messages -- are captured per
  // job; no verdict is derived here, so execution order cannot influence
  // the report.
  struct Outcome {
    std::optional<RunResult> result;
    std::string error;
  };
  const std::vector<Cell> cells = build_cells(spec, algo);
  const std::size_t runs_per_stack =
      1 + static_cast<std::size_t>(spec.perturb_seeds);
  const std::size_t stacks = cells.size();
  const auto job_spec = [&](std::size_t job) {
    const std::size_t r = job % runs_per_stack;
    RunSpec run = cells[job / runs_per_stack].run;
    if (r > 0) {
      run.config.perturb_seed =
          spec.perturb_seed_base + static_cast<std::uint64_t>(r - 1);
      run.config.perturb_max_delay_fs = spec.max_delay_fs;
    }
    return run;
  };
  // A shared trace recorder serializes; jobs=1 preserves the serial run
  // scope order (cell-major, baseline before seeds) exactly.
  const int jobs = spec.trace != nullptr ? 1 : spec.jobs;
  const std::vector<Outcome> outcomes = exec::parallel_map<Outcome>(
      stacks * runs_per_stack, jobs, [&](std::size_t job) {
        Outcome out;
        try {
          out.result = run_collective(job_spec(job));
        } catch (const std::exception& e) {
          // Deadlock or serial-reference verification failure under this
          // interleaving; the engine's message already names the stuck
          // cores and perturbation seed.
          out.error = e.what();
        }
        return out;
      });

  // Merge phase: spec order (cells outer, baseline then seeds), byte-
  // identical to the historical serial loop. Note jobs>1 simulates the
  // perturbed runs even when the cell's baseline failed (the serial path
  // skipped them); the wasted work only occurs on already-failing
  // configurations and never reaches the report.
  std::optional<std::vector<std::vector<double>>> reference;
  report.latency_histograms.resize(stacks);
  for (const Cell& cell : cells) report.cells.push_back(cell.name);
  for (std::size_t s = 0; s < stacks; ++s) {
    const std::string& stack_name = cells[s].name;
    const auto record = [&](std::optional<std::uint64_t> perturb_seed,
                            std::string what) {
      report.failures.push_back(ConformanceFailure{
          stack_name, spec.engine_seed, perturb_seed, std::move(what)});
    };

    const Outcome& base_out = outcomes[s * runs_per_stack];
    ++report.runs;
    if (!base_out.result) {
      record(std::nullopt, base_out.error);
      continue;  // no baseline -> perturbed runs have nothing to diff against
    }
    const RunResult& baseline = *base_out.result;
    for (const SimTime t : baseline.latencies) {
      report.latency_histograms[s].record_time(t);
    }
    if (cells[s].cross_check) {
      if (reference) {
        // Cross-stack differential check: data results are meant to be
        // identical across every cell running a comparable schedule.
        const std::string diff = diff_outputs(baseline.outputs, *reference);
        if (!diff.empty())
          record(std::nullopt, "cross-stack mismatch: " + diff);
      } else {
        reference = baseline.outputs;
        if (baseline.metrics) report.baseline_metrics = *baseline.metrics;
      }
    }

    for (int k = 0; k < spec.perturb_seeds; ++k) {
      const std::uint64_t pseed =
          spec.perturb_seed_base + static_cast<std::uint64_t>(k);
      const Outcome& out =
          outcomes[s * runs_per_stack + 1 + static_cast<std::size_t>(k)];
      ++report.runs;
      if (!out.result) {
        record(pseed, out.error);
        continue;
      }
      const RunResult& perturbed = *out.result;
      for (const SimTime t : perturbed.latencies) {
        report.latency_histograms[s].record_time(t);
      }
      const std::string diff = diff_outputs(perturbed.outputs,
                                            baseline.outputs);
      if (!diff.empty()) record(pseed, "result mismatch: " + diff);
      if (perturbed.lines_sent != baseline.lines_sent ||
          perturbed.line_hops != baseline.line_hops) {
        record(pseed,
               strprintf("traffic drift: lines_sent %llu vs %llu, "
                         "line_hops %llu vs %llu",
                         static_cast<unsigned long long>(
                             perturbed.lines_sent),
                         static_cast<unsigned long long>(
                             baseline.lines_sent),
                         static_cast<unsigned long long>(
                             perturbed.line_hops),
                         static_cast<unsigned long long>(
                             baseline.line_hops)));
      }
      if (spec.compare_metrics && baseline.metrics && perturbed.metrics) {
        const std::vector<std::string> drift =
            metrics::MetricsRegistry::diff_invariant(*baseline.metrics,
                                                     *perturbed.metrics);
        if (!drift.empty()) {
          // One failure per seed, leading with the first drifted counter
          // (a real bug typically drifts dozens of paths at once).
          record(pseed,
                 strprintf("metric drift (%zu path(s)): %s", drift.size(),
                           drift.front().c_str()));
        }
      }
    }
  }
  return report;
}

}  // namespace scc::harness
