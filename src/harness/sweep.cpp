#include "harness/sweep.hpp"

#include <algorithm>
#include <vector>

#include "common/contracts.hpp"
#include "common/string_util.hpp"
#include "exec/executor.hpp"

namespace scc::harness {

namespace {

std::size_t variant_index(const SweepResult& r, PaperVariant v) {
  const auto it = std::find(r.variants.begin(), r.variants.end(), v);
  SCC_EXPECTS(it != r.variants.end());
  return static_cast<std::size_t>(it - r.variants.begin());
}

}  // namespace

double SweepResult::mean_speedup_vs_blocking(PaperVariant v) const {
  const std::size_t base = variant_index(*this, PaperVariant::kBlocking);
  const std::size_t idx = variant_index(*this, v);
  double sum = 0.0;
  for (const SweepPoint& pt : points)
    sum += pt.latency_us[base] / pt.latency_us[idx];
  return sum / static_cast<double>(points.size());
}

std::pair<double, std::size_t> SweepResult::max_speedup_vs_blocking(
    PaperVariant v) const {
  const std::size_t base = variant_index(*this, PaperVariant::kBlocking);
  const std::size_t idx = variant_index(*this, v);
  double best = 0.0;
  std::size_t at = 0;
  for (const SweepPoint& pt : points) {
    const double s = pt.latency_us[base] / pt.latency_us[idx];
    if (s > best) {
      best = s;
      at = pt.elements;
    }
  }
  return {best, at};
}

double SweepResult::mean_latency_us(PaperVariant v) const {
  const std::size_t idx = variant_index(*this, v);
  double sum = 0.0;
  for (const SweepPoint& pt : points) sum += pt.latency_us[idx];
  return sum / static_cast<double>(points.size());
}

Table SweepResult::to_table() const {
  std::vector<std::string> header{"elements"};
  for (const PaperVariant v : variants)
    header.emplace_back(std::string(variant_name(v)) + "_us");
  Table table(std::move(header));
  for (const SweepPoint& pt : points) {
    std::vector<std::string> row{strprintf("%zu", pt.elements)};
    for (const double us : pt.latency_us) row.push_back(strprintf("%.2f", us));
    table.add_row(std::move(row));
  }
  return table;
}

SweepResult run_sweep(const SweepSpec& spec) {
  SCC_EXPECTS(spec.from <= spec.to);
  SCC_EXPECTS(spec.step >= 1);
  SCC_EXPECTS(spec.jobs >= 0);
  SweepResult result;
  result.variants = spec.variants.empty() ? variants_for(spec.collective)
                                          : spec.variants;

  // Flatten the (size x variant) grid into one job list; every cell is an
  // independent simulation on its own machine.
  std::vector<std::size_t> sizes;
  for (std::size_t n = spec.from; n <= spec.to; n += spec.step) {
    sizes.push_back(n);
  }
  const std::size_t stride = result.variants.size();
  const auto cell_spec = [&](std::size_t job) {
    RunSpec run;
    run.collective = spec.collective;
    run.variant = result.variants[job % stride];
    run.elements = sizes[job / stride];
    run.repetitions = spec.repetitions;
    run.warmup = spec.warmup;
    run.seed = spec.seed;
    run.verify = spec.verify;
    run.trace = spec.trace;
    run.config = spec.config;
    run.collect_metrics = spec.collect_metrics;
    run.pdes_workers = spec.pdes_workers;
    return run;
  };

  // A shared recorder is mutated by every traced run: serialize then, so
  // the trace stream keeps its deterministic serial order.
  const int jobs = spec.trace != nullptr ? 1 : spec.jobs;
  const std::vector<RunResult> cells = exec::parallel_map<RunResult>(
      sizes.size() * stride, jobs,
      [&](std::size_t job) { return run_collective(cell_spec(job)); });

  // Deterministic merge: spec order (sizes outer, variants inner), exactly
  // the order the serial loop produced and the order absorb() prefixes
  // were historically applied in.
  result.histograms.resize(stride);
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    SweepPoint point;
    point.elements = sizes[si];
    for (std::size_t vi = 0; vi < stride; ++vi) {
      const RunResult& rr = cells[si * stride + vi];
      point.latency_us.push_back(rr.mean_latency.us());
      for (const SimTime s : rr.latencies) {
        result.histograms[vi].record_time(s);
      }
      if (rr.metrics) {
        result.metrics.absorb(
            *rr.metrics,
            strprintf("point/%zu/%s/", sizes[si],
                      std::string(variant_name(result.variants[vi])).c_str()));
      }
    }
    result.points.push_back(std::move(point));
  }
  return result;
}

}  // namespace scc::harness
