// Differential conformance checking across the three message-passing
// stacks (RCCE blocking / iRCCE / lightweight non-blocking) under schedule
// perturbation.
//
// The paper's optimizations (relaxed synchronization IV-A, lightweight
// primitives IV-B) work by *removing* synchronization, which is exactly
// where ordering bugs hide -- and the default engine explores only one
// interleaving per program. This checker runs one (collective, size, mesh,
// split-policy) configuration through every stack, first unperturbed and
// then under K perturbation seeds (sim::PerturbConfig), and cross-checks:
//
//   1. element-wise results: every perturbed run must match the stack's
//      unperturbed baseline, and the three stacks' baselines must match
//      each other bit-for-bit (plus the harness's serial-reference check);
//   2. volume-type counter invariants: total cache-line transfers and
//      line-hops (noc::TrafficMatrix), and -- via the full metrics snapshot
//      (metrics/collect.hpp) -- cache hits/misses/writebacks, MPB footprint
//      high-water marks, flag deposits and per-link window counts are
//      properties of the algorithm, not of the schedule, so they must be
//      identical across perturbation seeds (time-type counters like queue
//      delays and poll counts may legitimately drift);
//   3. absence of deadlock: a perturbed interleaving that wedges the
//      protocol is reported, not hung (the engine detects queue drain).
//
// Every failure record carries the (engine seed, perturbation seed) pair
// needed to replay the exact interleaving deterministically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "coll/block_split.hpp"
#include "harness/runner.hpp"
#include "metrics/histogram.hpp"

namespace scc::harness {

struct ConformanceSpec {
  Collective collective = Collective::kAllreduce;
  std::size_t elements = 96;
  int tiles_x = 2;  // mesh shape; cores = tiles_x * tiles_y * 2
  int tiles_y = 2;
  coll::SplitPolicy split = coll::SplitPolicy::kBalanced;
  /// Cores per tile (cores = tiles_x * tiles_y * cores_per_tile). The SCC's
  /// value is 2; 1 enables odd core counts for the algorithm-variant grid.
  int cores_per_tile = 2;
  /// Algorithm override for the collectives with variants (coll/algos.hpp).
  /// Unset = the paper's algorithm. Algo::kAuto is resolved *once*, from
  /// (collective, n, p) with the lightweight prims, so all three stacks run
  /// the same algorithm -- the full-buffer diff in check (1) requires the
  /// same schedule per cell (different algorithms leave different, equally
  /// valid garbage outside the owned ReduceScatter block).
  std::optional<coll::Algo> algo;
  /// Seeds the input data and the engine's deterministic base trace.
  std::uint64_t engine_seed = 42;
  /// Number of perturbation seeds per stack (K). The seeds used are
  /// perturb_seed_base .. perturb_seed_base + K - 1.
  int perturb_seeds = 16;
  std::uint64_t perturb_seed_base = 1;
  /// When nonzero, perturbed runs also inject uniform random event delays
  /// in [0, max_delay_fs] femtoseconds (stresses timing assumptions, not
  /// just equal-time ordering).
  std::uint64_t max_delay_fs = 0;
  bool model_contention = false;
  /// Injected machine degradation (src/faults): every run of the matrix --
  /// all three stacks, baseline and perturbed -- simulates on the same
  /// degraded machine, so faults may change timings and schedules but
  /// never results. Empty = healthy machine (historical behavior).
  faults::FaultSpec faults;
  int repetitions = 1;
  int warmup = 0;
  /// Diffs the seed-invariant (volume-type) half of every perturbed run's
  /// metrics snapshot against the stack's unperturbed baseline. On by
  /// default: it subsumes the traffic-drift check and costs one snapshot
  /// per run.
  bool compare_metrics = true;
  /// When non-null, every run (baselines and perturbed replays) is traced
  /// into this recorder, each as its own run scope -- useful to visually
  /// compare the interleaving a failing perturbation seed produced.
  trace::Recorder* trace = nullptr;
  /// Host worker threads for the stack x (baseline + K seeds) matrix: 1 =
  /// serial, 0 = exec::default_jobs(). Every run simulates on its own
  /// machine; verdicts are derived in a deterministic merge pass in spec
  /// order, so the report (runs, failures, summary) is identical for every
  /// jobs value. A non-null `trace` recorder forces serial execution.
  int jobs = 1;
  /// PDES drain threads inside every run's machine (RunSpec::pdes_workers).
  /// 0 = serial machines (historical behavior). Orthogonal to `jobs`; the
  /// report is byte-identical for every (jobs, workers) combination.
  int pdes_workers = 0;
  /// Adds the RCKMPI baseline as a fourth conformance cell whenever the
  /// collective has an MPI counterpart and no algorithm override is set
  /// (RCKMPI runs MPICH's own schedules, so per-algorithm cells make no
  /// sense there). The cell gets the full per-cell treatment -- serial-
  /// reference verify, perturbed-vs-baseline result diff, traffic and
  /// metric drift -- and its outputs are additionally cross-checked against
  /// the RCCE stacks' shared reference for the value-deterministic
  /// collectives (allgather/alltoall/broadcast/allreduce; integer inputs
  /// make every reduction order bit-equal). Reduce and ReduceScatter leave
  /// schedule-dependent garbage outside the owned regions, so their RCKMPI
  /// cells skip only the cross-stack diff. Long conformance runs also
  /// re-exercise the channel's mod-256 sequence wraparound under real
  /// collective traffic (cumulative line counters persist across
  /// repetitions).
  bool check_rckmpi = true;
  /// Adds one non-blocking cell per RCCE stack (RunSpec::nonblocking at one
  /// lane) for the collectives with an i*() entry point (coll/nbc.hpp).
  /// One lane replays the blocking wire schedule exactly, so these cells
  /// cross-check bit-for-bit against the shared reference and must show
  /// zero traffic drift under every perturbation seed.
  bool check_nbc = false;
};

struct ConformanceFailure {
  std::string stack;  // prims_name of the stack that failed
  std::uint64_t engine_seed = 0;
  /// Empty for a failure of the unperturbed baseline run itself.
  std::optional<std::uint64_t> perturb_seed;
  std::string what;

  /// "collective/stack engine_seed=S perturb_seed=P: what" -- everything
  /// needed to replay the failing interleaving.
  [[nodiscard]] std::string replay() const;
};

struct ConformanceReport {
  /// The configuration line this report describes (for log output).
  std::string configuration;
  int runs = 0;  // simulations executed (3 stacks x (1 baseline + K))
  std::vector<ConformanceFailure> failures;
  /// Full metrics snapshot of the first stack's unperturbed baseline (the
  /// run every other run is diffed against); populated when
  /// spec.compare_metrics. Lets soak drivers export what was checked.
  std::optional<metrics::MetricsRegistry> baseline_metrics;
  /// Name of every conformance cell of this configuration, in matrix order:
  /// the three RCCE stacks, then "rckmpi" (when present), then the
  /// "<stack>-nbc" cells (when requested). Parallel to latency_histograms.
  std::vector<std::string> cells;
  /// Per-cell latency histogram over every completed simulation of the
  /// matrix (baseline and all perturbed seeds, every measured repetition;
  /// femtosecond values), indexed like `cells` and merged in spec order --
  /// byte-identical for every jobs value.
  std::vector<metrics::Histogram> latency_histograms;

  [[nodiscard]] bool passed() const { return failures.empty(); }
  /// Human-readable multi-line summary; lists every failure's replay line.
  [[nodiscard]] std::string summary() const;
};

/// Runs the full differential check for one configuration. Throws only on
/// harness misuse (bad spec); protocol failures -- mismatches, deadlocks,
/// traffic drift -- are collected in the report.
[[nodiscard]] ConformanceReport run_conformance(const ConformanceSpec& spec);

}  // namespace scc::harness
