#include "harness/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "coll/collectives.hpp"
#include "coll/nbc.hpp"
#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "common/string_util.hpp"
#include "machine/scc_machine.hpp"
#include "metrics/collect.hpp"

namespace scc::harness {

namespace {

coll::Prims prims_of(PaperVariant v) {
  switch (v) {
    case PaperVariant::kBlocking: return coll::Prims::kBlocking;
    case PaperVariant::kIrcce: return coll::Prims::kIrcce;
    default: return coll::Prims::kLightweight;
  }
}

coll::SplitPolicy split_of(PaperVariant v) {
  return v == PaperVariant::kLwBalanced ? coll::SplitPolicy::kBalanced
                                        : coll::SplitPolicy::kStandard;
}

struct KindSizes {
  std::size_t in_elems = 0;
  std::size_t out_elems = 0;
};

KindSizes kind_sizes(TrafficKind k, std::size_t n, int p) {
  const auto up = static_cast<std::size_t>(p);
  switch (k) {
    case TrafficKind::kAllreduce: return {n, n};
    case TrafficKind::kAllgather: return {n, n * up};
    case TrafficKind::kAlltoall: return {n * up, n * up};
    case TrafficKind::kBroadcast: return {0, n};  // in-place payload in out
  }
  return {n, n};
}

/// Integer-valued inputs keyed on (run seed, request index, rank): every
/// reduction order agrees bit-for-bit with the host reference, and distinct
/// requests carry distinct payloads (a stale-buffer reuse would be caught).
void fill_request_input(aligned_vector<double>& v, std::uint64_t seed,
                        std::size_t request, int rank) {
  Xoshiro256 rng(seed + 1000003 * (request + 1) +
                 static_cast<std::uint64_t>(rank));
  for (double& x : v) x = static_cast<double>(rng.below(1000));
}

/// Per-core, per-request buffers. Every request owns its buffers for the
/// whole run -- queued requests overlap, so slots cannot be recycled until
/// completion, and dedicated slots keep results checkable afterwards.
struct TrafficCoreData {
  std::vector<aligned_vector<double>> in;   // one per scheduled request
  std::vector<aligned_vector<double>> out;  // one per scheduled request
};

/// Rank 0's measurements, written by the core program.
struct TrafficProbe {
  /// latency[i] = completion-observation instant minus scheduled arrival
  /// of schedule entry i.
  std::vector<SimTime> latency;
  /// Indices in the order completions were observed (histogram fill order).
  std::vector<std::size_t> completion_order;
  SimTime makespan;
};

sim::Task<> run_blocking_request(coll::Stack& stack, const TrafficSpec& spec,
                                 const TrafficRequest& req,
                                 aligned_vector<double>& in,
                                 aligned_vector<double>& out) {
  const coll::SplitPolicy split = split_of(spec.variant);
  switch (req.kind) {
    case TrafficKind::kAllreduce:
      co_await coll::allreduce(stack, in, out, coll::ReduceOp::kSum, split,
                               coll::paper_algo(coll::CollKind::kAllreduce));
      co_return;
    case TrafficKind::kAllgather:
      co_await coll::allgather(stack, in, out,
                               coll::paper_algo(coll::CollKind::kAllgather));
      co_return;
    case TrafficKind::kAlltoall:
      co_await coll::alltoall(stack, in, out,
                              coll::paper_algo(coll::CollKind::kAlltoall));
      co_return;
    case TrafficKind::kBroadcast:
      co_await coll::broadcast(stack, out, req.root, split);
      co_return;
  }
}

coll::nbc::CollRequest initiate_request(coll::nbc::ProgressEngine& engine,
                                        const TrafficSpec& spec,
                                        const TrafficRequest& req,
                                        aligned_vector<double>& in,
                                        aligned_vector<double>& out) {
  const coll::SplitPolicy split = split_of(spec.variant);
  switch (req.kind) {
    case TrafficKind::kAllreduce:
      return engine.iallreduce(in, out, coll::ReduceOp::kSum, split);
    case TrafficKind::kAllgather:
      return engine.iallgather(in, out);
    case TrafficKind::kAlltoall:
      return engine.ialltoall(in, out);
    case TrafficKind::kBroadcast:
      return engine.ibcast(out, req.root, split);
  }
  return {};
}

/// Closed-loop baseline: the identical schedule, drained strictly in
/// arrival order through the blocking API. A request that arrives while an
/// earlier one is still in service waits in line -- its sojourn latency
/// includes the full head-of-line queueing delay.
sim::Task<> serialized_program(machine::CoreApi& api,
                               const rcce::Layout& layout,
                               const TrafficSpec& spec,
                               const std::vector<TrafficRequest>& schedule,
                               TrafficCoreData& data, TrafficProbe& probe) {
  coll::Stack stack(api, layout, prims_of(spec.variant));
  co_await api.sync_barrier();
  const SimTime t0 = api.now();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const SimTime target = t0 + schedule[i].arrival;
    if (api.now() < target) {
      co_await api.charge(machine::Phase::kCompute, target - api.now());
    }
    co_await run_blocking_request(stack, spec, schedule[i], data.in[i],
                                  data.out[i]);
    if (api.rank() == 0) {
      probe.latency[i] = api.now() - target;
      probe.completion_order.push_back(i);
    }
  }
  co_await api.sync_barrier();
  if (api.rank() == 0) probe.makespan = api.now() - t0;
}

/// Open-loop generator: the engine is driven until each arrival instant,
/// genuinely idle gaps are charged as compute think-time, and initiation
/// never blocks on earlier requests -- a backlogged engine simply carries
/// more in flight. Completions are observed (and timed) at progress-pass
/// boundaries, so the recorded latency includes the engine's poll
/// quantization, exactly as a real progress-loop client would see.
sim::Task<> open_loop_program(machine::CoreApi& api, const TrafficSpec& spec,
                              const std::vector<TrafficRequest>& schedule,
                              TrafficCoreData& data, TrafficProbe& probe) {
  coll::nbc::ProgressEngine engine(api, prims_of(spec.variant), spec.lanes);
  std::vector<std::pair<std::size_t, coll::nbc::CollRequest>> in_flight;
  co_await api.sync_barrier();
  const SimTime t0 = api.now();
  const auto reap = [&] {
    for (auto it = in_flight.begin(); it != in_flight.end();) {
      if (it->second.done()) {
        if (api.rank() == 0) {
          const std::size_t i = it->first;
          probe.latency[i] = api.now() - (t0 + schedule[i].arrival);
          probe.completion_order.push_back(i);
        }
        it = in_flight.erase(it);
      } else {
        ++it;
      }
    }
  };
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const SimTime target = t0 + schedule[i].arrival;
    while (api.now() < target && !engine.idle()) {
      co_await engine.progress();
      reap();
    }
    if (api.now() < target) {
      co_await api.charge(machine::Phase::kCompute, target - api.now());
    }
    in_flight.emplace_back(
        i, initiate_request(engine, spec, schedule[i], data.in[i],
                            data.out[i]));
  }
  while (!engine.idle()) {
    co_await engine.progress();
    reap();
  }
  co_await api.sync_barrier();
  if (api.rank() == 0) probe.makespan = api.now() - t0;
}

void verify_request(const TrafficSpec& spec, std::size_t idx,
                    const TrafficRequest& req, int p,
                    const std::vector<TrafficCoreData>& data) {
  const std::size_t n = spec.elements;
  const auto fail = [&](int rank, std::size_t elem, double got, double want) {
    throw std::runtime_error(strprintf(
        "traffic verification failed: request %zu (%s, stream %d) core %d "
        "element %zu: got %.17g want %.17g",
        idx, std::string(traffic_kind_name(req.kind)).c_str(), req.stream,
        rank, elem, got, want));
  };
  const auto& out_of = [&](int r) -> const aligned_vector<double>& {
    return data[static_cast<std::size_t>(r)].out[idx];
  };
  const auto& in_of = [&](int r) -> const aligned_vector<double>& {
    return data[static_cast<std::size_t>(r)].in[idx];
  };
  switch (req.kind) {
    case TrafficKind::kAllreduce: {
      std::vector<double> want(n, 0.0);
      for (int src = 0; src < p; ++src)
        for (std::size_t i = 0; i < n; ++i) want[i] += in_of(src)[i];
      for (int r = 0; r < p; ++r)
        for (std::size_t i = 0; i < n; ++i)
          if (out_of(r)[i] != want[i]) fail(r, i, out_of(r)[i], want[i]);
      return;
    }
    case TrafficKind::kAllgather: {
      for (int r = 0; r < p; ++r)
        for (int src = 0; src < p; ++src)
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t e = static_cast<std::size_t>(src) * n + i;
            if (out_of(r)[e] != in_of(src)[i])
              fail(r, e, out_of(r)[e], in_of(src)[i]);
          }
      return;
    }
    case TrafficKind::kAlltoall: {
      for (int r = 0; r < p; ++r)
        for (int src = 0; src < p; ++src)
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t e = static_cast<std::size_t>(src) * n + i;
            const double want =
                in_of(src)[static_cast<std::size_t>(r) * n + i];
            if (out_of(r)[e] != want) fail(r, e, out_of(r)[e], want);
          }
      return;
    }
    case TrafficKind::kBroadcast: {
      // The root's payload was staged in its own out slot before launch;
      // every core must end up with a bit-equal copy. Recompute it from the
      // deterministic fill instead of reading the root's (possibly
      // repainted) buffer.
      aligned_vector<double> want(n);
      fill_request_input(want, spec.seed ^ 0xb40adca57ULL, idx, req.root);
      for (int r = 0; r < p; ++r)
        for (std::size_t i = 0; i < n; ++i)
          if (out_of(r)[i] != want[i]) fail(r, i, out_of(r)[i], want[i]);
      return;
    }
  }
}

}  // namespace

std::vector<TrafficRequest> traffic_schedule(const TrafficSpec& spec, int p) {
  SCC_EXPECTS(spec.streams >= 1 && spec.requests_per_stream >= 1);
  SCC_EXPECTS(spec.mean_interarrival > SimTime::zero());
  std::vector<TrafficRequest> merged;
  merged.reserve(static_cast<std::size_t>(spec.streams) *
                 static_cast<std::size_t>(spec.requests_per_stream));
  const double mean_fs =
      static_cast<double>(spec.mean_interarrival.femtoseconds());
  for (int s = 0; s < spec.streams; ++s) {
    // Per-stream RNG stream: interarrival gaps and kinds are drawn
    // interleaved, so adding a stream never perturbs the others.
    Xoshiro256 rng(spec.seed * std::uint64_t{0x9e3779b97f4a7c15} +
                   static_cast<std::uint64_t>(s));
    SimTime t = SimTime::zero();
    for (int q = 0; q < spec.requests_per_stream; ++q) {
      // Exponential interarrival via inverse transform; 1 - u in (0, 1]
      // keeps log() finite, and the 1 fs floor keeps arrivals strictly
      // increasing within a stream.
      const double u = rng.uniform();
      const double gap_fs = -std::log(1.0 - u) * mean_fs;
      t += SimTime{std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(gap_fs))};
      TrafficRequest req;
      req.arrival = t;
      req.stream = s;
      req.kind = static_cast<TrafficKind>(
          rng.below(static_cast<std::uint64_t>(kTrafficKinds)));
      req.root = req.kind == TrafficKind::kBroadcast ? s % p : 0;
      merged.push_back(req);
    }
  }
  // Arrival-ordered global program; ties (possible only across streams)
  // break by stream id, so the merged order is a pure function of the spec.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TrafficRequest& a, const TrafficRequest& b) {
                     if (a.arrival != b.arrival) return a.arrival < b.arrival;
                     return a.stream < b.stream;
                   });
  return merged;
}

TrafficResult run_traffic(const TrafficSpec& spec) {
  if (spec.variant == PaperVariant::kRckmpi ||
      spec.variant == PaperVariant::kMpb) {
    throw std::runtime_error(strprintf(
        "traffic_gen supports the RCCE-family variants only, not %s",
        std::string(variant_name(spec.variant)).c_str()));
  }
  if (spec.lanes < 1) throw std::runtime_error("--lanes must be >= 1");
  if (!spec.serialize && spec.lanes > 1 &&
      spec.variant == PaperVariant::kBlocking) {
    throw std::runtime_error(
        "the blocking stack cannot interleave lanes (no poll-and-yield "
        "completion); use --lanes=1 or a non-blocking variant");
  }
  if (spec.elements < 1) throw std::runtime_error("--elements must be >= 1");

  machine::SccConfig config = machine::SccConfig::paper_default();
  config.tiles_x = spec.tiles_x;
  config.tiles_y = spec.tiles_y;
  if (spec.pdes_workers > 0) config.pdes_workers = spec.pdes_workers;
  const int p = config.num_cores();
  rcce::Layout layout(p);
  int flags_needed = layout.flags_needed();
  if (!spec.serialize) {
    for (int lane = 0; lane < spec.lanes; ++lane) {
      const rcce::Layout sub = rcce::Layout::lane(p, lane, spec.lanes);
      flags_needed = std::max(flags_needed, sub.flags_needed());
      if (spec.lanes > 1 && spec.elements * sizeof(double) > sub.chunk_bytes()) {
        // Oversized messages fall back to blocking completion waits inside
        // a lane step, which can deadlock across lanes -- reject up front.
        throw std::runtime_error(strprintf(
            "elements=%zu (%zu bytes/message) exceeds lane %d's MPB chunk "
            "(%zu bytes) at --lanes=%d; shrink the message or the lane count",
            spec.elements, spec.elements * sizeof(double), lane,
            sub.chunk_bytes(), spec.lanes));
      }
    }
  }
  config.flags_per_core = std::max(config.flags_per_core, flags_needed);
  machine::SccMachine machine(config);
  std::optional<metrics::Sampler> sampler;
  const std::string label =
      strprintf("traffic/%s%s lanes=%d streams=%d",
                std::string(variant_name(spec.variant)).c_str(),
                spec.serialize ? " serialized" : "",
                spec.serialize ? 1 : spec.lanes, spec.streams);
  if (spec.sample_interval > SimTime::zero()) {
    if (machine.partitions() > 1) {
      sampler.emplace(SimTime::zero());
      sampler->set_label(label);
      metrics::add_machine_columns(machine, *sampler);
      machine.pdes().set_window_probe(
          [&s = *sampler](SimTime t) { s.tick(t); });
    } else {
      sampler.emplace(spec.sample_interval);
      sampler->set_label(label);
      metrics::add_machine_columns(machine, *sampler);
      sampler->attach(machine.engine());
    }
  }

  const std::vector<TrafficRequest> schedule = traffic_schedule(spec, p);
  std::vector<TrafficCoreData> data(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    auto& d = data[static_cast<std::size_t>(r)];
    d.in.resize(schedule.size());
    d.out.resize(schedule.size());
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      const KindSizes sizes = kind_sizes(schedule[i].kind, spec.elements, p);
      d.in[i].resize(sizes.in_elems);
      d.out[i].resize(sizes.out_elems, 0.0);
      fill_request_input(d.in[i], spec.seed, i, r);
      if (schedule[i].kind == TrafficKind::kBroadcast &&
          r == schedule[i].root) {
        // The broadcast payload lives in the root's out slot (in-place
        // API); a distinct seed axis keeps it disjoint from in-buffers.
        fill_request_input(d.out[i], spec.seed ^ 0xb40adca57ULL, i, r);
      }
    }
  }

  TrafficProbe probe;
  probe.latency.assign(schedule.size(), SimTime::zero());
  for (int r = 0; r < p; ++r) {
    auto& d = data[static_cast<std::size_t>(r)];
    if (spec.serialize) {
      machine.launch(r, serialized_program(machine.core(r), layout, spec,
                                           schedule, d, probe));
    } else {
      machine.launch(
          r, open_loop_program(machine.core(r), spec, schedule, d, probe));
    }
  }
  machine.run();

  if (spec.verify) {
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      verify_request(spec, i, schedule[i], p, data);
    }
  }

  TrafficResult result;
  SCC_ASSERT(probe.completion_order.size() == schedule.size());
  for (const std::size_t i : probe.completion_order) {
    result.latency.record(probe.latency[i].femtoseconds());
  }
  result.latencies = std::move(probe.latency);
  result.makespan = probe.makespan;
  result.requests = schedule.size();
  result.events = machine.events_processed();
  const noc::TrafficMatrix traffic = machine.merged_traffic();
  result.lines_sent = traffic.total_lines_sent();
  result.line_hops = traffic.total_line_hops();
  if (sampler) {
    if (machine.partitions() > 1) {
      machine.pdes().set_window_probe({});
    } else {
      machine.engine().clear_probe();
    }
    result.timeseries = sampler->take();
  }
  return result;
}

}  // namespace scc::harness
