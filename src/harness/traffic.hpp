// Open-loop multi-tenant traffic generator over the non-blocking
// collectives (coll/nbc.hpp).
//
// Closed-loop benchmarks (runner.hpp) measure one collective at a time:
// initiate, drain, repeat. Real workloads on a many-core message-passing
// chip look different -- several tenants (streams) issue collectives at
// their own rates, requests queue behind each other, and the latency that
// matters is *completion time minus scheduled arrival time*, tail included.
// This harness builds that workload deterministically:
//
//   1. A global schedule is precomputed on the host: every stream draws
//      exponential interarrival gaps and a mixed collective kind per
//      request from its own seeded Xoshiro256 stream; the streams are then
//      merged into one arrival-ordered list shared by all cores. The
//      schedule is a pure function of (spec, p) -- initiation order is
//      SPMD by construction, which is exactly the contract the
//      ProgressEngine's lane assignment needs.
//   2. Open-loop issue: each core advances the engine until the next
//      request's arrival instant, charges any genuinely idle gap as
//      compute think-time, then initiates the request NON-BLOCKINGLY --
//      a late-running collective never delays the arrival of the next
//      one (that is what distinguishes open-loop from closed-loop load
//      generation, and what makes queueing delay visible in the tail).
//   3. Rank 0 observes completions at progress-pass boundaries and
//      records `now - scheduled_arrival` per request into a
//      metrics::Histogram (femtoseconds; log-bucketed, ~3% relative
//      error) -- p50/p99/p999 of *sojourn* latency, not service latency.
//
// `serialize = true` runs the identical schedule through the blocking API
// instead (requests drain strictly in order): the baseline every overlap
// claim in EXPERIMENTS.md is gated against. Everything simulated is
// bit-identical for every --jobs / --workers combination, like the rest
// of the harness.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "harness/runner.hpp"
#include "metrics/histogram.hpp"
#include "metrics/sampler.hpp"

namespace scc::harness {

/// The collective kinds a stream may draw. All four have non-blocking
/// entry points; reduce/reduce_scatter do not (yet) and are excluded.
enum class TrafficKind : std::uint8_t {
  kAllreduce,
  kAllgather,
  kAlltoall,
  kBroadcast,
};
inline constexpr int kTrafficKinds = 4;

[[nodiscard]] constexpr std::string_view traffic_kind_name(TrafficKind k) {
  switch (k) {
    case TrafficKind::kAllreduce: return "allreduce";
    case TrafficKind::kAllgather: return "allgather";
    case TrafficKind::kAlltoall: return "alltoall";
    case TrafficKind::kBroadcast: return "broadcast";
  }
  return "?";
}

struct TrafficSpec {
  /// Independent tenant streams; each draws its own interarrival gaps and
  /// collective kinds from a per-stream RNG stream.
  int streams = 4;
  int requests_per_stream = 8;
  /// Vector size per collective (doubles); Alltoall: per (src, dst) pair.
  std::size_t elements = 64;
  /// Mean of the exponential interarrival distribution per stream. The
  /// aggregate offered rate is streams / mean_interarrival.
  SimTime mean_interarrival = SimTime::from_us(50.0);
  std::uint64_t seed = 42;
  /// RCCE-family variants only (the non-blocking engine has no RCKMPI or
  /// MPB-direct path). kBlocking is allowed, but only with lanes == 1.
  PaperVariant variant = PaperVariant::kLightweight;
  /// Progress-engine lanes (coll/nbc.hpp). More lanes buy more overlap
  /// between queued requests at the price of a smaller per-lane MPB chunk;
  /// every request's largest single message (elements * 8 bytes) must fit
  /// the narrowest lane's chunk, checked up front.
  int lanes = 2;
  /// Replays the identical schedule through the *blocking* API, strictly
  /// in arrival order (closed-loop drain). The serialized baseline for
  /// the overlap-win gate.
  bool serialize = false;
  /// Element-wise verification of every request's result against a serial
  /// reference computed on the host.
  bool verify = true;
  int tiles_x = 2;  // mesh shape; cores = tiles_x * tiles_y * 2
  int tiles_y = 2;
  /// Conservative-PDES drain threads inside the machine (--workers=N);
  /// 0 = serial engine. Never changes a simulated byte.
  int pdes_workers = 0;
  /// When nonzero, attaches the metrics::Sampler flight recorder at this
  /// simulated-time cadence (TrafficResult::timeseries).
  SimTime sample_interval = SimTime::zero();
};

/// One scheduled request of the merged arrival-ordered global program.
struct TrafficRequest {
  SimTime arrival;   // offset from the post-setup barrier instant
  int stream = 0;    // issuing tenant
  TrafficKind kind = TrafficKind::kAllreduce;
  int root = 0;      // broadcast root (stream % p); unused otherwise
};

/// The deterministic merged schedule for `p` cores -- a pure function of
/// (spec, p), exposed so tests and the bench CLI can print or replay it.
[[nodiscard]] std::vector<TrafficRequest> traffic_schedule(
    const TrafficSpec& spec, int p);

struct TrafficResult {
  /// Sojourn latency (completion - scheduled arrival) of every request,
  /// femtosecond values, recorded on rank 0 in completion-observation
  /// order. merge() this across scenario repeats for tail tables.
  metrics::Histogram latency;
  /// Same latencies indexed by request position in the schedule (tests
  /// diff these across jobs/workers/modes without histogram bucketing).
  std::vector<SimTime> latencies;
  /// Post-setup barrier to all-streams-drained barrier, on rank 0.
  SimTime makespan;
  std::size_t requests = 0;
  std::uint64_t events = 0;
  std::uint64_t lines_sent = 0;  // end-to-end MPB cache-line transfers
  std::uint64_t line_hops = 0;   // sum over links (volume x distance)
  /// Flight-recorder series (when sample_interval was nonzero).
  std::optional<metrics::TimeSeries> timeseries;
};

/// Runs one traffic scenario on a fresh machine. Throws std::runtime_error
/// on harness misuse (bad spec, oversized messages for the lane chunk),
/// simulation deadlock, or verification failure.
[[nodiscard]] TrafficResult run_traffic(const TrafficSpec& spec);

}  // namespace scc::harness
