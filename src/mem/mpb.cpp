#include "mem/mpb.hpp"

#include <algorithm>

namespace scc::mem {

MpbStorage::MpbStorage(int num_cores, std::size_t bytes_per_core)
    : num_cores_(num_cores),
      bytes_per_core_(bytes_per_core),
      storage_(static_cast<std::size_t>(num_cores) * bytes_per_core),
      high_water_(static_cast<std::size_t>(num_cores), 0) {
  SCC_EXPECTS(num_cores > 0);
  SCC_EXPECTS(bytes_per_core > 0);
}

std::size_t MpbStorage::flat_index(MpbAddr addr, std::size_t bytes) const {
  SCC_EXPECTS(addr.core >= 0 && addr.core < num_cores_);
  SCC_EXPECTS(addr.offset <= bytes_per_core_);
  SCC_EXPECTS(bytes <= bytes_per_core_ - addr.offset);
  auto& hw = high_water_[static_cast<std::size_t>(addr.core)];
  hw = std::max(hw, addr.offset + bytes);
  return static_cast<std::size_t>(addr.core) * bytes_per_core_ + addr.offset;
}

std::span<std::byte> MpbStorage::range(MpbAddr addr, std::size_t bytes) {
  return {storage_.data() + flat_index(addr, bytes), bytes};
}

std::span<const std::byte> MpbStorage::range(MpbAddr addr,
                                             std::size_t bytes) const {
  return {storage_.data() + flat_index(addr, bytes), bytes};
}

void MpbStorage::write(MpbAddr dst, std::span<const std::byte> src) {
  auto out = range(dst, src.size());
  std::memcpy(out.data(), src.data(), src.size());
}

void MpbStorage::read(MpbAddr src, std::span<std::byte> dst) const {
  auto in = range(src, dst.size());
  std::memcpy(dst.data(), in.data(), dst.size());
}

void MpbStorage::copy(MpbAddr src, MpbAddr dst, std::size_t bytes) {
  auto in = range(src, bytes);
  auto out = range(dst, bytes);
  std::memmove(out.data(), in.data(), bytes);
}

void MpbStorage::poison(int core, std::byte pattern) {
  SCC_EXPECTS(core >= 0 && core < num_cores_);
  // Direct fill, bypassing flat_index: poisoning must not register as a
  // protocol footprint in the high-water mark.
  const auto begin =
      storage_.begin() +
      static_cast<std::ptrdiff_t>(static_cast<std::size_t>(core) *
                                  bytes_per_core_);
  std::fill(begin, begin + static_cast<std::ptrdiff_t>(bytes_per_core_),
            pattern);
}

}  // namespace scc::mem
