// Private-memory cache model (one per simulated core).
//
// Models the P54C core's cache hierarchy as a single level with the 256 KB
// L2's capacity: 32-byte lines, LRU, write-back, non-write-allocate (the
// documented SCC L2 policies). The paper's Section IV-D argument -- "only
// the first access to a private memory address goes off-chip; later
// accesses hit the cache, masking DRAM latency" -- is exactly what this
// model reproduces, and it is why the MPB-direct Allreduce gains little
// while the arbiter-bug workaround is active.
//
// The model is deliberately FULLY ASSOCIATIVE: user buffers live at host
// heap addresses, and a set-indexed model would make simulated timing
// depend on the allocator's placement (breaking run-to-run determinism,
// a design requirement of this simulator). The cost is that conflict
// misses are not modeled -- only capacity and cold misses -- which is the
// right trade-off for reproducing the paper's cached-vs-MPB comparison.
//
// The model is a timing filter only: it classifies each touched line as
// hit or miss. Data lives in ordinary host memory.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/contracts.hpp"
#include "mem/cost_model.hpp"

namespace scc::mem {

struct CacheAccessResult {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;           // lines fetched from DRAM
  std::uint64_t writebacks = 0;       // dirty lines evicted to DRAM
  std::uint64_t uncached_writes = 0;  // write misses sent straight to DRAM
};

/// Cumulative per-core cache counters (the lifetime sum of every
/// CacheAccessResult the model handed out). Volume-type: a core's access
/// sequence is its own program order, so these are schedule-invariant and
/// the conformance harness pins them across perturbation seeds.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t uncached_writes = 0;

  CacheStats& operator+=(const CacheAccessResult& r) {
    hits += r.hits;
    misses += r.misses;
    writebacks += r.writebacks;
    uncached_writes += r.uncached_writes;
    return *this;
  }
};

class CacheModel {
 public:
  explicit CacheModel(const HwCostModel& hw);

  /// Touches [addr, addr+bytes) for reading; classifies each line.
  CacheAccessResult touch_read(std::uintptr_t addr, std::size_t bytes);

  /// Touches [addr, addr+bytes) for writing. Write hits dirty the line;
  /// write misses do NOT allocate (non-write-allocate) and are counted as
  /// uncached_writes.
  CacheAccessResult touch_write(std::uintptr_t addr, std::size_t bytes);

  /// Drops every line (cold-start experiments). Cumulative stats() survive
  /// the flush: they count accesses, not contents.
  void flush_all();

  [[nodiscard]] std::uint64_t resident_lines() const { return map_.size(); }
  [[nodiscard]] std::uint64_t capacity_lines() const { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::list<std::uintptr_t>::iterator lru_pos;
    bool dirty = false;
  };

  /// Inserts `line` as most-recently-used; evicts LRU on overflow.
  /// Returns true when the eviction wrote back a dirty line.
  bool insert(std::uintptr_t line);

  std::uint64_t capacity_;
  std::list<std::uintptr_t> lru_;  // front = most recently used
  std::unordered_map<std::uintptr_t, Entry> map_;
  CacheStats stats_;
};

}  // namespace scc::mem
