// Message-passing buffer storage: the 8 KB of on-chip SRAM per core.
//
// This is the *functional* half of the MPB model -- real bytes move through
// these buffers, so collective results can be verified bit-for-bit. The
// *timing* half lives in LatencyCalculator.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "mem/cost_model.hpp"

namespace scc::mem {

/// An offset into one core's MPB.
struct MpbAddr {
  int core = 0;
  std::size_t offset = 0;
};

class MpbStorage {
 public:
  MpbStorage(int num_cores, std::size_t bytes_per_core = kMpbBytesPerCore);

  [[nodiscard]] std::size_t bytes_per_core() const { return bytes_per_core_; }
  [[nodiscard]] int num_cores() const { return num_cores_; }

  /// Mutable view of a range in a core's MPB; bounds-checked.
  [[nodiscard]] std::span<std::byte> range(MpbAddr addr, std::size_t bytes);
  [[nodiscard]] std::span<const std::byte> range(MpbAddr addr,
                                                 std::size_t bytes) const;

  void write(MpbAddr dst, std::span<const std::byte> src);
  void read(MpbAddr src, std::span<std::byte> dst) const;
  /// MPB-to-MPB copy (remote read + local write of the MPB-direct path).
  void copy(MpbAddr src, MpbAddr dst, std::size_t bytes);

  /// Fills a core's whole MPB with a poison pattern (used by tests to catch
  /// reads of never-written buffer areas). Does not count towards the
  /// footprint high-water mark (it is harness scaffolding, not a protocol
  /// access).
  void poison(int core, std::byte pattern);

  /// Highest end offset (offset + bytes) any access has touched in `core`'s
  /// MPB -- the protocol's footprint high-water mark. Volume-type:
  /// schedule-invariant for deterministic protocols.
  [[nodiscard]] std::size_t high_water(int core) const {
    SCC_EXPECTS(core >= 0 && core < num_cores_);
    return high_water_[static_cast<std::size_t>(core)];
  }

 private:
  [[nodiscard]] std::size_t flat_index(MpbAddr addr, std::size_t bytes) const;

  int num_cores_;
  std::size_t bytes_per_core_;
  std::vector<std::byte> storage_;
  // Footprint tracking is observational bookkeeping on a const path
  // (range() const is the read funnel), hence mutable.
  mutable std::vector<std::size_t> high_water_;
};

}  // namespace scc::mem
