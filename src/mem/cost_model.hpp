// Latency and software-overhead constants for the simulated SCC.
//
// Hardware numbers come from the paper (Section IV-D and V) and the SCC
// Programmer's Guide it cites:
//   - cores 533 MHz, mesh 800 MHz, DDR3 800 MHz ("standard preset"),
//   - local MPB access: 15 core cycles; with the tile-arbiter bug
//     workaround (self-addressed packets): 45 core cycles + 8 mesh cycles,
//   - remote MPB access: 45 core cycles + 4*hops mesh cycles per direction,
//   - off-chip DRAM: 40 core cycles + 8*d mesh cycles (d = hops to the
//     core's memory controller) plus DRAM service time,
//   - L1 line size 32 bytes; the write-combining buffer transfers whole
//     lines, so a trailing partial line costs an extra transfer call.
//
// Software overheads (per-call costs of the communication layers) cannot be
// taken from the paper directly -- it reports only their *effects* (speedup
// ratios). The defaults below are chosen so a 533 MHz P54C running RCCE
// under Linux lands in the paper's measured bands; EXPERIMENTS.md documents
// the calibration.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace scc::mem {

inline constexpr std::size_t kCacheLineBytes = 32;  // P54C L1 line
inline constexpr std::size_t kMpbBytesPerCore = 8192;

/// Hardware timing model.
struct HwCostModel {
  double core_hz = 533e6;
  double mesh_hz = 800e6;
  double dram_hz = 800e6;

  // --- MPB (on-chip SRAM message-passing buffers) ---
  /// Local MPB access without the hardware bug: 15 core cycles per line.
  std::uint32_t mpb_local_core_cycles = 15;
  /// Local MPB access via the bug workaround (self packets):
  /// 45 core cycles + 8 mesh cycles per line.
  std::uint32_t mpb_local_bug_core_cycles = 45;
  std::uint32_t mpb_local_bug_mesh_cycles = 8;
  /// The tile-MPB arbiter bug workaround is active on the evaluated chip.
  bool mpb_bug_workaround = true;

  /// Remote MPB access: core-side cost per line ...
  std::uint32_t mpb_remote_core_cycles = 45;
  /// ... plus 4 mesh cycles per hop in each direction (reads are round
  /// trips; writes are posted and cost one direction at the issuing core).
  std::uint32_t mesh_cycles_per_hop = 4;

  /// Consecutive lines of one bulk MPB transfer after the first (the
  /// iRCCE-optimized memcpy integrated into RCCE 1.1.0). The P54C has no
  /// hardware prefetch and MPBT lines are invalidated between transfers,
  /// so bulk copies stay latency-bound per line; 90 core cycles/line
  /// reproduces the ~150-200 MB/s band reported for optimized RCCE copies.
  std::uint32_t mpb_pipelined_line_core_cycles = 90;

  /// Direct (non-memcpy) MPB accesses, per 32-bit word: the MPB-direct
  /// Allreduce feeds the reduction operator straight from MPB addresses,
  /// so operands move as individual uncached word accesses -- MPBT lines
  /// are invalidated every round (CL1INVMB) and stores issued through the
  /// arbiter-bug workaround do not write-combine. This is the
  /// microarchitectural reason Section IV-D's measured gain is only ~10%.
  std::uint32_t mpb_word_remote_core_cycles = 28;  // + 2*4*h mesh per word
  std::uint32_t mpb_word_local_core_cycles = 15;
  std::uint32_t mpb_word_local_bug_core_cycles = 45;  // + 8 mesh

  /// Optional first-order link-contention model (noc::LinkContention).
  /// Off by default: the paper's formulas are contention-free, and the
  /// ring schedules the collectives use are mostly neighbour-local.
  bool model_link_contention = false;
  /// Per-link forwarding time of one 32-byte line when contention is on.
  std::uint32_t link_service_mesh_cycles_per_line = 3;

  // --- private (off-chip, cacheable) memory ---
  std::uint32_t cache_hit_core_cycles = 4;
  /// Off-chip access: 40 core cycles + 8*d mesh cycles + DRAM service.
  std::uint32_t dram_core_cycles = 40;
  std::uint32_t dram_mesh_cycles_per_hop = 8;
  std::uint32_t dram_service_dram_cycles = 46;
  /// Consecutive missing lines of a bulk private-memory access pipeline:
  /// each additional miss costs this many core cycles.
  std::uint32_t dram_pipelined_line_core_cycles = 30;
  /// Cached write (write-back): cycles per line at the core.
  std::uint32_t cache_write_core_cycles = 4;

  // --- cache geometry (per core; unified model of the 256 KB L2) ---
  std::uint32_t cache_bytes = 256 * 1024;
  std::uint32_t cache_ways = 4;

  [[nodiscard]] Clock core_clock() const { return Clock{core_hz}; }
  [[nodiscard]] Clock mesh_clock() const { return Clock{mesh_hz}; }
  [[nodiscard]] Clock dram_clock() const { return Clock{dram_hz}; }
};

/// Per-call software overheads of each communication layer, in core cycles.
/// These model instruction-path lengths: argument checking, flag handling
/// code, request bookkeeping, MPI envelope processing. See DESIGN.md §4.
struct SwCostModel {
  // RCCE blocking primitives (Fig. 3 path). The measured per-call cost of
  // RCCE_send/RCCE_recv (1400 cycles total each) splits into genuine entry
  // overhead and the busy poll loop executed inside RCCE_wait_until -- the
  // flag-read-and-test iterations that run even when the partner is already
  // there. Function-level profilers attribute the poll cycles to
  // rcce_wait_until (the paper's Section IV-A "up to 50%" observation), so
  // they are charged to Phase::kFlagWait; the split leaves every latency
  // bit-identical (same total cycles at the same point in the call).
  std::uint32_t rcce_send_call = 400;
  std::uint32_t rcce_recv_call = 400;
  /// Busy wait_until poll-loop cycles per blocking send/recv call,
  /// attributed to Phase::kFlagWait (see above).
  std::uint32_t rcce_wait_until_poll = 1000;
  /// Extra dispatch when a message has a trailing partial cache line
  /// (the paper's period-4 spikes: a second internal transfer call).
  std::uint32_t rcce_partial_line_call = 900;

  // iRCCE general non-blocking engine (Section IV-B: linked-list request
  // keeping, wildcard support, cancellation paths, dynamic memory).
  std::uint32_t ircce_issue = 900;
  std::uint32_t ircce_complete = 700;

  // Paper's lightweight non-blocking primitives (one slot each way).
  std::uint32_t lwnb_issue = 260;
  std::uint32_t lwnb_complete = 220;

  // Flag operations (set / detected read) beyond the raw MPB access.
  std::uint32_t flag_op = 80;

  // Collective-layer per-call and per-round dispatch.
  std::uint32_t coll_call = 500;
  std::uint32_t coll_round = 180;
  // The MPB-direct Allreduce's per-round handshake/management code path.
  std::uint32_t mpb_round = 150;

  // RCKMPI: full MPI layer (ADI3 + CH3 + SCCMPB channel).
  std::uint32_t mpi_call = 22000;         // MPI_Send/Recv entry/exit
  /// Posted nonblocking operation pair (MPICH's alltoall/allgather post
  /// irecv/isend up front; rounds then only pay progress-engine costs).
  std::uint32_t mpi_nb_call = 4000;
  std::uint32_t mpi_packet = 250;         // per packet burst staged via the channel
  std::uint32_t mpi_match_attempt = 140;  // per matching-queue probe
  std::uint32_t mpi_coll_call = 6500;     // collective entry (algorithm pick)

  // Reduction kernel cost per element (load, FP add, store on a P54C).
  std::uint32_t reduce_cycles_per_element = 9;
  // Plain copy kernel cost per element where it is not already covered by
  // MPB/cache charges.
  std::uint32_t copy_cycles_per_element = 3;
};

struct CostModel {
  HwCostModel hw;
  SwCostModel sw;
};

}  // namespace scc::mem
