#include "mem/cache.hpp"

namespace scc::mem {

namespace {
constexpr std::uintptr_t line_of(std::uintptr_t addr) {
  return addr / kCacheLineBytes;
}
}  // namespace

CacheModel::CacheModel(const HwCostModel& hw)
    : capacity_(hw.cache_bytes / kCacheLineBytes) {
  SCC_EXPECTS(capacity_ > 0);
  map_.reserve(capacity_);
}

bool CacheModel::insert(std::uintptr_t line) {
  lru_.push_front(line);
  map_.emplace(line, Entry{lru_.begin(), false});
  if (map_.size() <= capacity_) return false;
  const std::uintptr_t victim = lru_.back();
  lru_.pop_back();
  const auto it = map_.find(victim);
  SCC_ASSERT(it != map_.end());
  const bool dirty = it->second.dirty;
  map_.erase(it);
  return dirty;
}

CacheAccessResult CacheModel::touch_read(std::uintptr_t addr,
                                         std::size_t bytes) {
  CacheAccessResult result;
  if (bytes == 0) return result;
  const std::uintptr_t first = line_of(addr);
  const std::uintptr_t last = line_of(addr + bytes - 1);
  for (std::uintptr_t line = first; line <= last; ++line) {
    const auto it = map_.find(line);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      ++result.hits;
      continue;
    }
    ++result.misses;
    if (insert(line)) ++result.writebacks;
  }
  stats_ += result;
  return result;
}

CacheAccessResult CacheModel::touch_write(std::uintptr_t addr,
                                          std::size_t bytes) {
  CacheAccessResult result;
  if (bytes == 0) return result;
  const std::uintptr_t first = line_of(addr);
  const std::uintptr_t last = line_of(addr + bytes - 1);
  for (std::uintptr_t line = first; line <= last; ++line) {
    const auto it = map_.find(line);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      it->second.dirty = true;
      ++result.hits;
      continue;
    }
    // Non-write-allocate: the write goes to memory without filling a line.
    ++result.uncached_writes;
  }
  stats_ += result;
  return result;
}

void CacheModel::flush_all() {
  lru_.clear();
  map_.clear();
}

}  // namespace scc::mem
