#include "mem/latency.hpp"

namespace scc::mem {

namespace {

/// Femtoseconds of a (possibly fractional) number of cycles of `clock`.
/// For whole cycle counts this is bit-identical to Clock::cycles: the cycle
/// count is exact in long double, so the product and truncation match.
SimTime fractional_cycles(const Clock& clock, double cycles) {
  const long double fs = static_cast<long double>(cycles) *
                         (1e15L / static_cast<long double>(clock.hz()));
  return SimTime{static_cast<std::uint64_t>(fs)};
}

}  // namespace

SimTime LatencyCalculator::scale(SimTime t, double factor) {
  if (factor == 1.0) return t;  // healthy path: exactly the old arithmetic
  const long double fs = static_cast<long double>(t.femtoseconds()) *
                         static_cast<long double>(factor);
  return SimTime{static_cast<std::uint64_t>(fs)};
}

SimTime LatencyCalculator::scale_core(SimTime t, int core) const {
  return faults_ == nullptr ? t : scale(t, faults_->core_factor(core));
}

double LatencyCalculator::effective_hops(int from, int to) const {
  if (faults_ == nullptr) return topo_->hops(from, to);
  return faults_->weighted_hops(from, to);
}

SimTime LatencyCalculator::mpb_line_access(int accessor, int mpb_owner,
                                           bool is_read) const {
  const Clock core = hw_->core_clock();
  const Clock mesh = hw_->mesh_clock();
  if (topo_->tile_of(accessor) == topo_->tile_of(mpb_owner)) {
    // Local (same-tile) MPB. With the arbiter bug workaround, the access is
    // converted into a self-addressed packet: 45 core + 8 mesh cycles. The
    // self packet never leaves the tile's own router, so link faults don't
    // apply; the core-side cycles still stretch on a degraded core.
    if (hw_->mpb_bug_workaround) {
      return scale_core(core.cycles(hw_->mpb_local_bug_core_cycles),
                        accessor) +
             mesh.cycles(hw_->mpb_local_bug_mesh_cycles);
    }
    return scale_core(core.cycles(hw_->mpb_local_core_cycles), accessor);
  }
  const double hops = effective_hops(accessor, mpb_owner);
  const double directions = is_read ? 2.0 : 1.0;  // reads are round trips
  return scale_core(core.cycles(hw_->mpb_remote_core_cycles), accessor) +
         fractional_cycles(mesh,
                           directions * hops * hw_->mesh_cycles_per_hop);
}

SimTime LatencyCalculator::mpb_bulk(int accessor, int mpb_owner,
                                    std::size_t bytes, bool is_read) const {
  if (bytes == 0) return SimTime::zero();
  const std::uint64_t lines = lines_for(bytes);
  SimTime t = mpb_line_access(accessor, mpb_owner, is_read);
  if (lines > 1) {
    t += scale_core(hw_->core_clock().cycles(
                        (lines - 1) * hw_->mpb_pipelined_line_core_cycles),
                    accessor);
  }
  return t;
}

SimTime LatencyCalculator::mpb_word_stream(int accessor, int mpb_owner,
                                           std::size_t bytes,
                                           bool is_read) const {
  if (bytes == 0) return SimTime::zero();
  const std::uint64_t words = (bytes + 3) / 4;  // 32-bit P54C words
  const Clock core = hw_->core_clock();
  const Clock mesh = hw_->mesh_clock();
  if (topo_->tile_of(accessor) == topo_->tile_of(mpb_owner)) {
    if (hw_->mpb_bug_workaround) {
      return scale_core(core.cycles(words * hw_->mpb_word_local_bug_core_cycles),
                        accessor) +
             mesh.cycles(words * hw_->mpb_local_bug_mesh_cycles);
    }
    return scale_core(core.cycles(words * hw_->mpb_word_local_core_cycles),
                      accessor);
  }
  const double hops = effective_hops(accessor, mpb_owner);
  const double directions = is_read ? 2.0 : 1.0;
  return scale_core(core.cycles(words * hw_->mpb_word_remote_core_cycles),
                    accessor) +
         fractional_cycles(mesh, static_cast<double>(words) * directions *
                                     hops * hw_->mesh_cycles_per_hop);
}

SimTime LatencyCalculator::min_hop_transit() const {
  return hw_->mesh_clock().cycles(hw_->mesh_cycles_per_hop);
}

SimTime LatencyCalculator::mesh_transit(int from, int to) const {
  return fractional_cycles(hw_->mesh_clock(),
                           effective_hops(from, to) *
                               hw_->mesh_cycles_per_hop);
}

SimTime LatencyCalculator::priv_access(int core,
                                       const CacheAccessResult& r) const {
  const Clock core_clk = hw_->core_clock();
  const Clock mesh = hw_->mesh_clock();
  const Clock dram = hw_->dram_clock();
  const double mc_hops =
      faults_ == nullptr
          ? static_cast<double>(topo_->hops_to_mc(core))
          : faults_->weighted_hops_to(core,
                                      topo_->mc_coord(topo_->mc_of(core)));

  SimTime t =
      scale_core(core_clk.cycles(r.hits * hw_->cache_hit_core_cycles), core);
  const std::uint64_t dram_lines = r.misses + r.uncached_writes;
  if (dram_lines > 0) {
    // First missing line pays the full off-chip latency; the rest pipeline.
    // The DRAM service itself runs on the memory controller's clock and is
    // unaffected by core-side degradation.
    t += scale_core(core_clk.cycles(hw_->dram_core_cycles), core) +
         fractional_cycles(mesh, mc_hops * hw_->dram_mesh_cycles_per_hop) +
         dram.cycles(hw_->dram_service_dram_cycles);
    t += scale_core(core_clk.cycles((dram_lines - 1) *
                                    hw_->dram_pipelined_line_core_cycles),
                    core);
  }
  // Dirty evictions drain through the write buffer in the background; they
  // only cost issue bandwidth at the core.
  t += scale_core(core_clk.cycles(r.writebacks * hw_->cache_write_core_cycles),
                  core);
  return t;
}

}  // namespace scc::mem
