#include "mem/latency.hpp"

namespace scc::mem {

SimTime LatencyCalculator::mpb_line_access(int accessor, int mpb_owner,
                                           bool is_read) const {
  const Clock core = hw_->core_clock();
  const Clock mesh = hw_->mesh_clock();
  if (topo_->tile_of(accessor) == topo_->tile_of(mpb_owner)) {
    // Local (same-tile) MPB. With the arbiter bug workaround, the access is
    // converted into a self-addressed packet: 45 core + 8 mesh cycles.
    if (hw_->mpb_bug_workaround) {
      return core.cycles(hw_->mpb_local_bug_core_cycles) +
             mesh.cycles(hw_->mpb_local_bug_mesh_cycles);
    }
    return core.cycles(hw_->mpb_local_core_cycles);
  }
  const auto hops = static_cast<std::uint64_t>(topo_->hops(accessor, mpb_owner));
  const std::uint64_t directions = is_read ? 2 : 1;  // reads are round trips
  return core.cycles(hw_->mpb_remote_core_cycles) +
         mesh.cycles(directions * hops * hw_->mesh_cycles_per_hop);
}

SimTime LatencyCalculator::mpb_bulk(int accessor, int mpb_owner,
                                    std::size_t bytes, bool is_read) const {
  if (bytes == 0) return SimTime::zero();
  const std::uint64_t lines = lines_for(bytes);
  SimTime t = mpb_line_access(accessor, mpb_owner, is_read);
  if (lines > 1) {
    t += hw_->core_clock().cycles((lines - 1) *
                                  hw_->mpb_pipelined_line_core_cycles);
  }
  return t;
}

SimTime LatencyCalculator::mpb_word_stream(int accessor, int mpb_owner,
                                           std::size_t bytes,
                                           bool is_read) const {
  if (bytes == 0) return SimTime::zero();
  const std::uint64_t words = (bytes + 3) / 4;  // 32-bit P54C words
  const Clock core = hw_->core_clock();
  const Clock mesh = hw_->mesh_clock();
  if (topo_->tile_of(accessor) == topo_->tile_of(mpb_owner)) {
    if (hw_->mpb_bug_workaround) {
      return core.cycles(words * hw_->mpb_word_local_bug_core_cycles) +
             mesh.cycles(words * hw_->mpb_local_bug_mesh_cycles);
    }
    return core.cycles(words * hw_->mpb_word_local_core_cycles);
  }
  const auto hops = static_cast<std::uint64_t>(topo_->hops(accessor, mpb_owner));
  const std::uint64_t directions = is_read ? 2 : 1;
  return core.cycles(words * hw_->mpb_word_remote_core_cycles) +
         mesh.cycles(words * directions * hops * hw_->mesh_cycles_per_hop);
}

SimTime LatencyCalculator::mesh_transit(int from, int to) const {
  const auto hops = static_cast<std::uint64_t>(topo_->hops(from, to));
  return hw_->mesh_clock().cycles(hops * hw_->mesh_cycles_per_hop);
}

SimTime LatencyCalculator::priv_access(int core,
                                       const CacheAccessResult& r) const {
  const Clock core_clk = hw_->core_clock();
  const Clock mesh = hw_->mesh_clock();
  const Clock dram = hw_->dram_clock();
  const auto mc_hops = static_cast<std::uint64_t>(topo_->hops_to_mc(core));

  SimTime t = core_clk.cycles(r.hits * hw_->cache_hit_core_cycles);
  const std::uint64_t dram_lines = r.misses + r.uncached_writes;
  if (dram_lines > 0) {
    // First missing line pays the full off-chip latency; the rest pipeline.
    t += core_clk.cycles(hw_->dram_core_cycles) +
         mesh.cycles(mc_hops * hw_->dram_mesh_cycles_per_hop) +
         dram.cycles(hw_->dram_service_dram_cycles);
    t += core_clk.cycles((dram_lines - 1) *
                         hw_->dram_pipelined_line_core_cycles);
  }
  // Dirty evictions drain through the write buffer in the background; they
  // only cost issue bandwidth at the core.
  t += core_clk.cycles(r.writebacks * hw_->cache_write_core_cycles);
  return t;
}

}  // namespace scc::mem
