// LatencyCalculator: the timing half of the memory system.
//
// Maps memory-system operations (MPB reads/writes, flag writes, cacheable
// private-memory accesses) to virtual-time durations, composing the clock
// domains and the hop distances of the mesh. Pure arithmetic -- no state --
// so it can be unit-tested against the documented formulas directly.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "mem/cache.hpp"
#include "mem/cost_model.hpp"
#include "noc/topology.hpp"

namespace scc::mem {

[[nodiscard]] constexpr std::uint64_t lines_for(std::size_t bytes) {
  return (bytes + kCacheLineBytes - 1) / kCacheLineBytes;
}

/// True when a transfer of `bytes` ends in a partial cache line, which
/// costs RCCE an extra internal transfer call (the period-4 latency spikes
/// in Fig. 9 -- 4 doubles per 32-byte line).
[[nodiscard]] constexpr bool has_partial_line(std::size_t bytes) {
  return bytes % kCacheLineBytes != 0;
}

class LatencyCalculator {
 public:
  LatencyCalculator(const HwCostModel& hw, const noc::Topology& topo)
      : hw_(&hw), topo_(&topo) {}

  /// Access by `accessor` to one line of `mpb_owner`'s MPB.
  /// Reads are mesh round trips; writes are posted (one-way cost at the
  /// issuing core). Local accesses honour the arbiter-bug workaround.
  [[nodiscard]] SimTime mpb_line_access(int accessor, int mpb_owner,
                                        bool is_read) const;

  /// Bulk transfer of `bytes` between a core and an MPB: first line pays
  /// the full access latency, subsequent lines pipeline.
  [[nodiscard]] SimTime mpb_bulk(int accessor, int mpb_owner,
                                 std::size_t bytes, bool is_read) const;

  /// Word-granular uncached MPB streaming (the MPB-direct Allreduce's data
  /// path): every 32-bit word pays the full access latency; no
  /// write-combining, no line pipelining.
  [[nodiscard]] SimTime mpb_word_stream(int accessor, int mpb_owner,
                                        std::size_t bytes, bool is_read) const;

  /// Mesh transit delay from core a's router to core b's (used for the
  /// visibility delay of posted flag writes).
  [[nodiscard]] SimTime mesh_transit(int from, int to) const;

  /// Cacheable private-memory access, costed from a cache classification.
  [[nodiscard]] SimTime priv_access(int core, const CacheAccessResult& r) const;

  /// Plain compute: n core cycles.
  [[nodiscard]] SimTime core_cycles(std::uint64_t n) const {
    return hw_->core_clock().cycles(n);
  }

  [[nodiscard]] const HwCostModel& hw() const { return *hw_; }

 private:
  const HwCostModel* hw_;
  const noc::Topology* topo_;
};

}  // namespace scc::mem
