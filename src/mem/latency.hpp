// LatencyCalculator: the timing half of the memory system.
//
// Maps memory-system operations (MPB reads/writes, flag writes, cacheable
// private-memory accesses) to virtual-time durations, composing the clock
// domains and the hop distances of the mesh. Pure arithmetic -- no state --
// so it can be unit-tested against the documented formulas directly.
//
// An optional faults::FaultModel degrades the arithmetic (DESIGN.md §13):
// per-core factors multiply every core-clock term of the issuing core,
// per-link multipliers replace the flat hop count with the factor-weighted
// length of the (possibly rerouted) path. With no fault model attached --
// or one whose factors are all 1.0 and whose links are all alive -- every
// formula reduces bit-identically to the healthy machine.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "faults/fault_model.hpp"
#include "mem/cache.hpp"
#include "mem/cost_model.hpp"
#include "noc/topology.hpp"

namespace scc::mem {

[[nodiscard]] constexpr std::uint64_t lines_for(std::size_t bytes) {
  return (bytes + kCacheLineBytes - 1) / kCacheLineBytes;
}

/// True when a transfer of `bytes` ends in a partial cache line, which
/// costs RCCE an extra internal transfer call (the period-4 latency spikes
/// in Fig. 9 -- 4 doubles per 32-byte line).
[[nodiscard]] constexpr bool has_partial_line(std::size_t bytes) {
  return bytes % kCacheLineBytes != 0;
}

class LatencyCalculator {
 public:
  LatencyCalculator(const HwCostModel& hw, const noc::Topology& topo,
                    const faults::FaultModel* faults = nullptr)
      : hw_(&hw), topo_(&topo), faults_(faults) {}

  /// Access by `accessor` to one line of `mpb_owner`'s MPB.
  /// Reads are mesh round trips; writes are posted (one-way cost at the
  /// issuing core). Local accesses honour the arbiter-bug workaround.
  [[nodiscard]] SimTime mpb_line_access(int accessor, int mpb_owner,
                                        bool is_read) const;

  /// Bulk transfer of `bytes` between a core and an MPB: first line pays
  /// the full access latency, subsequent lines pipeline.
  [[nodiscard]] SimTime mpb_bulk(int accessor, int mpb_owner,
                                 std::size_t bytes, bool is_read) const;

  /// Word-granular uncached MPB streaming (the MPB-direct Allreduce's data
  /// path): every 32-bit word pays the full access latency; no
  /// write-combining, no line pipelining.
  [[nodiscard]] SimTime mpb_word_stream(int accessor, int mpb_owner,
                                        std::size_t bytes, bool is_read) const;

  /// Mesh transit delay from core a's router to core b's (used for the
  /// visibility delay of posted flag writes).
  [[nodiscard]] SimTime mesh_transit(int from, int to) const;

  /// The smallest nonzero cross-router charge in the model: one healthy
  /// mesh hop (mesh_cycles_per_hop mesh cycles). Fault-model link factors
  /// are >= 1 and reroutes only lengthen paths, so this is a hard lower
  /// bound on every inter-tile interaction even on a degraded mesh -- which
  /// is exactly what a conservative-PDES lookahead must be.
  [[nodiscard]] SimTime min_hop_transit() const;

  /// Cacheable private-memory access, costed from a cache classification.
  [[nodiscard]] SimTime priv_access(int core, const CacheAccessResult& r) const;

  /// Plain compute: n core cycles (healthy machine; no core attribution).
  [[nodiscard]] SimTime core_cycles(std::uint64_t n) const {
    return hw_->core_clock().cycles(n);
  }

  /// Plain compute at a specific core: n core cycles, stretched by the
  /// core's fault factor (straggler / DVFS). Identical to core_cycles(n)
  /// when the core is healthy.
  [[nodiscard]] SimTime core_cycles(std::uint64_t n, int core) const {
    return scale_core(hw_->core_clock().cycles(n), core);
  }

  [[nodiscard]] const HwCostModel& hw() const { return *hw_; }
  [[nodiscard]] const faults::FaultModel* faults() const { return faults_; }

 private:
  /// t stretched by `factor`; exactly t when factor == 1 (the healthy-path
  /// bit-identity guarantee).
  [[nodiscard]] static SimTime scale(SimTime t, double factor);
  [[nodiscard]] SimTime scale_core(SimTime t, int core) const;
  /// Effective (factor-weighted, reroute-aware) hop count between two
  /// cores' routers; the plain Manhattan distance on a healthy mesh.
  [[nodiscard]] double effective_hops(int from, int to) const;

  const HwCostModel* hw_;
  const noc::Topology* topo_;
  const faults::FaultModel* faults_;
};

}  // namespace scc::mem
