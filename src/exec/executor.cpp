#include "exec/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/cli.hpp"

namespace scc::exec {

namespace {

/// Strict SCC_JOBS parse (mirrors bench_support's env_size discipline): a
/// mistyped SCC_JOBS=1O must abort, not quietly run serial.
int jobs_from_env() {
  const char* value = std::getenv("SCC_JOBS");
  if (value == nullptr) return 0;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 1 ||
      parsed > std::numeric_limits<int>::max()) {
    std::fprintf(stderr, "error: SCC_JOBS='%s' is not a positive integer\n",
                 value);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

/// Monotonic host-time delta in nanoseconds (instrumentation only).
std::uint64_t ns_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

int default_jobs() {
  static const int env = jobs_from_env();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int resolve_jobs(int jobs) {
  SCC_EXPECTS(jobs >= 0);
  return jobs == 0 ? default_jobs() : jobs;
}

int jobs_flag(const CliFlags& flags) {
  // auto (absent) = 0: default_jobs() at the executor.
  return flags.get_positive_int("jobs", 0);
}

int workers_flag(const CliFlags& flags) {
  // absent = 0: serial machines (no PDES drain threads).
  return flags.get_positive_int("workers", 0);
}

WorkerPool::WorkerPool(int threads, bool instrument)
    : instrument_(instrument) {
  SCC_EXPECTS(threads >= 1);
  worker_busy_ns_.resize(static_cast<std::size_t>(threads), 0);
  helpers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) {
    helpers_.emplace_back(
        [this, t] { helper_loop(static_cast<std::size_t>(t - 1)); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& helper : helpers_) helper.join();
}

std::uint64_t WorkerPool::work(Round& round) {
  std::uint64_t busy = 0;
  for (;;) {
    const std::size_t i = round.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= round.count) return busy;
    const auto t0 = instrument_ ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    try {
      (*round.fn)(i);
    } catch (...) {
      round.errors[i] = std::current_exception();
    }
    if (instrument_) busy += ns_since(t0);
    // The release increment pairs with run_round's acquire read: every
    // fn(i) effect (including errors[i]) happens-before the round's end.
    // Only the LAST finisher takes the mutex and notifies -- one park/notify
    // round trip per round, not per index.
    if (round.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        round.count) {
      const std::lock_guard<std::mutex> lock(mutex_);
      cv_done_.notify_all();
    }
  }
}

void WorkerPool::helper_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    Round* round = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto park0 = instrument_ ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point{};
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      // park_ns_ accumulates under the lock the wait reacquired -- the
      // instrumentation adds no synchronization the pool didn't already do.
      if (instrument_) park_ns_ += ns_since(park0);
      if (stop_) return;
      seen = epoch_;
      round = round_;
      // Register as active under the same lock that published round_: the
      // round's stack frame stays alive until every registered helper has
      // deregistered, so a straggler can never touch a dead Round (its last
      // next.fetch_add probes past count AFTER all indices completed).
      if (round != nullptr) ++active_;
    }
    if (round != nullptr) {
      const std::uint64_t busy = work(*round);
      const std::lock_guard<std::mutex> lock(mutex_);
      if (instrument_) {
        busy_ns_ += busy;
        worker_busy_ns_[worker] += busy;
      }
      if (--active_ == 0) cv_done_.notify_all();
    }
  }
}

void WorkerPool::run_round(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  ++rounds_;
  tasks_ += count;
  if (helpers_.empty() || count == 1) {
    // Exactly the serial path: inline, in order, first failure propagates
    // from its own frame.
    const auto t0 = instrument_ ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    for (std::size_t i = 0; i < count; ++i) fn(i);
    if (instrument_) {
      const std::uint64_t busy = ns_since(t0);
      busy_ns_ += busy;
      worker_busy_ns_.back() += busy;
    }
    return;
  }

  Round round;
  round.count = count;
  round.fn = &fn;
  round.errors.resize(count);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SCC_EXPECTS(!in_round_);
    in_round_ = true;
    round_ = &round;
    ++epoch_;
  }
  cv_work_.notify_all();  // one batched wakeup for the whole round
  const std::uint64_t caller_busy = work(round);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto wait0 = instrument_ ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
    cv_done_.wait(lock, [&] {
      return round.completed.load(std::memory_order_acquire) == count &&
             active_ == 0;
    });
    if (instrument_) {
      barrier_wait_ns_ += ns_since(wait0);
      busy_ns_ += caller_busy;
      worker_busy_ns_.back() += caller_busy;
    }
    round_ = nullptr;
    in_round_ = false;
  }

  // One slot per index; the first failing INDEX (not the first failing
  // thread) is rethrown so the surfaced error is schedule-independent.
  for (std::exception_ptr& e : round.errors) {
    if (e) std::rethrow_exception(e);
  }
}

WorkerPoolStats WorkerPool::pool_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  WorkerPoolStats s;
  s.rounds = rounds_;
  s.tasks = tasks_;
  s.instrumented = instrument_;
  s.busy_ns = busy_ns_;
  s.park_ns = park_ns_;
  s.barrier_wait_ns = barrier_wait_ns_;
  s.worker_busy_ns = worker_busy_ns_;
  return s;
}

void for_each_index(std::size_t count, int jobs,
                    const std::function<void(std::size_t)>& fn) {
  const int workers = resolve_jobs(jobs);
  if (count == 0) return;
  if (workers <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // A transient pool: spawn, one round, join -- the historical
  // for_each_index contract, now sharing the WorkerPool implementation the
  // PDES drain reuses across tens of thousands of rounds.
  WorkerPool pool(static_cast<int>(
      std::min(static_cast<std::size_t>(workers), count)));
  pool.run_round(count, fn);
}

}  // namespace scc::exec
