#include "exec/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/cli.hpp"

namespace scc::exec {

namespace {

/// Strict SCC_JOBS parse (mirrors bench_support's env_size discipline): a
/// mistyped SCC_JOBS=1O must abort, not quietly run serial.
int jobs_from_env() {
  const char* value = std::getenv("SCC_JOBS");
  if (value == nullptr) return 0;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 1 ||
      parsed > std::numeric_limits<int>::max()) {
    std::fprintf(stderr, "error: SCC_JOBS='%s' is not a positive integer\n",
                 value);
    std::exit(2);
  }
  return static_cast<int>(parsed);
}

}  // namespace

int default_jobs() {
  static const int env = jobs_from_env();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int resolve_jobs(int jobs) {
  SCC_EXPECTS(jobs >= 0);
  return jobs == 0 ? default_jobs() : jobs;
}

int jobs_flag(const CliFlags& flags) {
  if (!flags.has("jobs")) return 0;  // auto: default_jobs() at the executor
  const std::int64_t jobs = flags.get_int("jobs", 0);
  if (jobs < 1 || jobs > std::numeric_limits<int>::max())
    throw std::runtime_error("--jobs must be a positive integer, got " +
                             std::to_string(jobs));
  return static_cast<int>(jobs);
}

void for_each_index(std::size_t count, int jobs,
                    const std::function<void(std::size_t)>& fn) {
  const int workers = resolve_jobs(jobs);
  if (count == 0) return;
  if (workers <= 1 || count == 1) {
    // Exactly the serial path: inline, in order, first failure propagates
    // from its own frame.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // One slot per index; the first failing INDEX (not the first failing
  // thread) is rethrown below so the surfaced error is schedule-independent.
  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  const std::size_t spawn =
      std::min(static_cast<std::size_t>(workers), count);
  std::vector<std::thread> pool;
  pool.reserve(spawn - 1);
  for (std::size_t t = 1; t < spawn; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace scc::exec
