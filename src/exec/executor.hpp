// Host-thread parallel executor for independent simulation runs.
//
// Every paper artifact -- a Fig. 9 sweep, a conformance matrix, a soak
// round -- is a fan-out of FULLY INDEPENDENT simulations: each job builds
// its own SccMachine (and therefore its own sim::Engine, MPB, caches,
// traffic matrix...), so jobs share no mutable state and can run on host
// threads without any locking in the simulated world. Determinism is
// preserved by construction:
//
//   1. each simulation is bit-identical no matter which host thread runs
//      it (the virtual world never reads host time, host thread ids, or
//      global mutable state);
//   2. results are collected into a slot per job index and MERGED IN SPEC
//      ORDER after the pool drains, so every CSV/JSON/table byte equals
//      the serial (jobs=1) output;
//   3. exceptions are captured per job and rethrown in job-index order --
//      the error the caller sees is the one the serial run would have hit
//      first, regardless of which thread finished when.
//
// jobs == 1 runs inline on the calling thread (no pool, no thread spawn):
// the serial path stays exactly the serial path, which keeps debuggers and
// deterministic replay simple. Shared-recorder work (tracing) must use it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace scc {
class CliFlags;
}

namespace scc::exec {

/// Worker threads to use when the caller passed 0 ("auto"): the host's
/// hardware concurrency, at least 1. Overridable with SCC_JOBS (strictly
/// parsed; garbage aborts rather than silently running serial).
[[nodiscard]] int default_jobs();

/// Maps a user-facing --jobs value to a worker count: 0 -> default_jobs(),
/// N >= 1 -> N. Negative values are a precondition violation (CLIs reject
/// them before calling in).
[[nodiscard]] int resolve_jobs(int jobs);

/// Reads --jobs=N from parsed CLI flags: absent -> 0 ("auto", resolved to
/// default_jobs() at the executor). An explicit value must be a
/// well-formed integer >= 1 -- 0, negatives and garbage throw
/// std::runtime_error through CliFlags' hardened get_int path.
[[nodiscard]] int jobs_flag(const CliFlags& flags);

/// Reads --workers=N (PDES drain threads inside each simulated machine;
/// RunSpec::pdes_workers) from parsed CLI flags: absent -> 0 (serial
/// machines, the pre-PDES path). Same validation and error style as
/// --jobs: an explicit value must be a well-formed integer >= 1.
[[nodiscard]] int workers_flag(const CliFlags& flags);

/// Executor introspection counters (WorkerPool::pool_stats).
///
/// rounds/tasks are pure work-volume counts, deterministic for a given
/// program. The *_ns timers are HOST wall-clock (steady_clock) and are only
/// populated when the pool was built with instrument = true: they vary run
/// to run and must never flow into determinism-gated artifacts -- they are
/// for human diagnosis ("workers spend 80% of the window parked waiting for
/// the straggler partition"), exported via metrics::collect_worker_pool.
struct WorkerPoolStats {
  std::uint64_t rounds = 0;  // run_round calls with count > 0
  std::uint64_t tasks = 0;   // indices executed across all rounds
  bool instrumented = false;
  std::uint64_t busy_ns = 0;          // total time inside fn across workers
  std::uint64_t park_ns = 0;          // helpers blocked between rounds
  std::uint64_t barrier_wait_ns = 0;  // caller blocked on round completion
  /// Per-worker busy time; helpers 0..n-2 first, the calling thread last.
  std::vector<std::uint64_t> worker_busy_ns;
};

/// Persistent bounded worker pool for repeated index fan-outs.
///
/// for_each_index spawns and joins threads per call, which is fine for a
/// sweep (a handful of fan-outs, each seconds long) but hopeless for an
/// intra-run PDES drain that executes tens of thousands of short window
/// rounds: thread creation would dominate. A WorkerPool keeps `threads - 1`
/// helpers parked on one condition variable across rounds, and park/notify
/// is batched per ROUND, not per task: run_round() publishes the whole round
/// and issues a single notify_all; helpers then self-serve indices from an
/// atomic counter, and only the last finisher signals completion.
///
/// run_round(count, fn) runs fn(0..count-1) across the pool (the calling
/// thread participates as worker 0) and returns when every index completed.
/// The first exception IN INDEX ORDER is rethrown after the round drains --
/// the same schedule-independent error contract as for_each_index. Rounds
/// are strictly sequential: run_round must not be called concurrently or
/// reentrantly (SCC_EXPECTS-checked).
class WorkerPool {
 public:
  /// `threads` >= 1: maximum concurrent executors, including the caller.
  /// threads == 1 spawns nothing and makes run_round a plain inline loop.
  /// `instrument` additionally samples steady_clock around fn/park/barrier
  /// waits (see WorkerPoolStats); off by default so the PDES window hot
  /// path pays no clock syscalls.
  explicit WorkerPool(int threads, bool instrument = false);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int threads() const {
    return static_cast<int>(helpers_.size()) + 1;
  }

  void run_round(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Snapshot of the cumulative counters. Must not race a running round
  /// (query between rounds / after the last one, like the PDES drain does).
  [[nodiscard]] WorkerPoolStats pool_stats() const;

 private:
  struct Round {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::vector<std::exception_ptr> errors;
  };

  void helper_loop(std::size_t worker);
  /// Returns nanoseconds spent inside fn by this worker (0 uninstrumented).
  std::uint64_t work(Round& round);

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;   // helpers park here between rounds
  std::condition_variable cv_done_;   // run_round parks here for the tail
  Round* round_ = nullptr;            // published under mutex_
  std::uint64_t epoch_ = 0;           // bumped per round (helper wake predicate)
  int active_ = 0;                    // helpers inside the current round
  bool stop_ = false;
  bool in_round_ = false;
  bool instrument_ = false;
  // Work-volume counters (caller thread only; rounds are sequential).
  std::uint64_t rounds_ = 0;
  std::uint64_t tasks_ = 0;
  // Host timers, written only under mutex_ (helpers already take it at
  // round exit, so instrumentation adds no extra synchronization points).
  std::uint64_t busy_ns_ = 0;
  std::uint64_t park_ns_ = 0;
  std::uint64_t barrier_wait_ns_ = 0;
  std::vector<std::uint64_t> worker_busy_ns_;  // helpers first, caller last
  std::vector<std::thread> helpers_;
};

/// Runs fn(0..count-1) on a bounded pool of `jobs` workers and returns
/// when every index completed. Indices are handed out in order (work
/// stealing from one atomic counter); completion order is unspecified.
/// The first exception IN INDEX ORDER is rethrown after the pool drains.
/// jobs <= 1 (after resolve) runs inline in index order. One-shot
/// convenience over WorkerPool (a transient pool per call).
void for_each_index(std::size_t count, int jobs,
                    const std::function<void(std::size_t)>& fn);

/// Typed fan-out: returns fn(i) for i in [0, count), in index order.
/// R must be default-constructible (slots are pre-sized).
template <typename R>
[[nodiscard]] std::vector<R> parallel_map(
    std::size_t count, int jobs, const std::function<R(std::size_t)>& fn) {
  std::vector<R> results(count);
  for_each_index(count, jobs,
                 [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace scc::exec
