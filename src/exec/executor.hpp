// Host-thread parallel executor for independent simulation runs.
//
// Every paper artifact -- a Fig. 9 sweep, a conformance matrix, a soak
// round -- is a fan-out of FULLY INDEPENDENT simulations: each job builds
// its own SccMachine (and therefore its own sim::Engine, MPB, caches,
// traffic matrix...), so jobs share no mutable state and can run on host
// threads without any locking in the simulated world. Determinism is
// preserved by construction:
//
//   1. each simulation is bit-identical no matter which host thread runs
//      it (the virtual world never reads host time, host thread ids, or
//      global mutable state);
//   2. results are collected into a slot per job index and MERGED IN SPEC
//      ORDER after the pool drains, so every CSV/JSON/table byte equals
//      the serial (jobs=1) output;
//   3. exceptions are captured per job and rethrown in job-index order --
//      the error the caller sees is the one the serial run would have hit
//      first, regardless of which thread finished when.
//
// jobs == 1 runs inline on the calling thread (no pool, no thread spawn):
// the serial path stays exactly the serial path, which keeps debuggers and
// deterministic replay simple. Shared-recorder work (tracing) must use it.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace scc {
class CliFlags;
}

namespace scc::exec {

/// Worker threads to use when the caller passed 0 ("auto"): the host's
/// hardware concurrency, at least 1. Overridable with SCC_JOBS (strictly
/// parsed; garbage aborts rather than silently running serial).
[[nodiscard]] int default_jobs();

/// Maps a user-facing --jobs value to a worker count: 0 -> default_jobs(),
/// N >= 1 -> N. Negative values are a precondition violation (CLIs reject
/// them before calling in).
[[nodiscard]] int resolve_jobs(int jobs);

/// Reads --jobs=N from parsed CLI flags: absent -> 0 ("auto", resolved to
/// default_jobs() at the executor). An explicit value must be a
/// well-formed integer >= 1 -- 0, negatives and garbage throw
/// std::runtime_error through CliFlags' hardened get_int path.
[[nodiscard]] int jobs_flag(const CliFlags& flags);

/// Runs fn(0..count-1) on a bounded pool of `jobs` workers and returns
/// when every index completed. Indices are handed out in order (work
/// stealing from one atomic counter); completion order is unspecified.
/// The first exception IN INDEX ORDER is rethrown after the pool drains.
/// jobs <= 1 (after resolve) runs inline in index order.
void for_each_index(std::size_t count, int jobs,
                    const std::function<void(std::size_t)>& fn);

/// Typed fan-out: returns fn(i) for i in [0, count), in index order.
/// R must be default-constructible (slots are pre-sized).
template <typename R>
[[nodiscard]] std::vector<R> parallel_map(
    std::size_t count, int jobs, const std::function<R(std::size_t)>& fn) {
  std::vector<R> results(count);
  for_each_index(count, jobs,
                 [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace scc::exec
