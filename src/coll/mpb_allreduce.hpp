// MPB-direct Allreduce (the paper's Section IV-D).
//
// The ring ReduceScatter treats data blocks as in-transit data: received,
// reduced, and immediately forwarded. Instead of bouncing every block
// through private memory (remote MPB -> private, reduce in private,
// private -> local MPB), this routine:
//   - feeds the reduction directly from the LEFT neighbour's MPB (remote
//     read) and the local input vector,
//   - writes the result directly into the LOCAL MPB,
//   - double-buffers the MPB (split in half, Fig. 8) so a core can fill
//     one buffer while its right neighbour still reads the other,
//   - synchronizes buffers with filled/free handshake flags.
//
// The allgather phase forwards the reduced blocks through the same MPB
// buffers, copying each into the private result vector as it passes by.
//
// Why the measured gain is small on the real chip (and in the default
// config): the tile-MPB arbiter bug forces local MPB accesses through
// self-addressed packets (45 core + 8 mesh cycles/line instead of 15 core
// cycles), while the private-memory path it replaces is served from the
// cache after the first touch. Run with SccConfig::bug_fixed() to see the
// hypothetical gain (bench/abl_mpb_bug).
//
// Handshake flags carry 8-bit SEQUENCE numbers rather than booleans: each
// write/consume event uses the next value, so back-to-back invocations
// need no flag clearing and cannot confuse a stale token for a fresh one.
// Consequence: one MpbAllreduce object must persist across invocations on
// the same machine (both sides count events).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/aligned.hpp"

#include "coll/block_split.hpp"
#include "machine/core_api.hpp"
#include "rcce/layout.hpp"
#include "rcce/rcce.hpp"
#include "sim/task.hpp"

namespace scc::coll {

class MpbAllreduce {
 public:
  MpbAllreduce(machine::CoreApi& api, const rcce::Layout& layout)
      : api_(&api), layout_(&layout) {}

  /// SPMD entry: every core calls run with its own input/output vectors.
  sim::Task<> run(std::span<const double> in, std::span<double> out,
                  rcce::ReduceOp op, SplitPolicy policy);

 private:
  struct BufferGeometry {
    std::size_t buf_bytes = 0;  // size of each half (32-byte aligned)
    std::size_t max_block = 0;  // elements
  };
  [[nodiscard]] BufferGeometry geometry(const std::vector<Block>& blocks) const;

  [[nodiscard]] mem::MpbAddr buf_addr(int core, int buf,
                                      const BufferGeometry& g) const {
    return layout_->payload_addr(core,
                                 static_cast<std::size_t>(buf) * g.buf_bytes);
  }

  /// Waits until our right neighbour freed local buffer `buf` (no-op for
  /// its very first use ever), then writes `block` into it and signals
  /// `filled` to the right neighbour.
  sim::Task<> acquire_local_buffer(int buf);
  sim::Task<> publish_filled(int buf);
  /// Waits for the left neighbour's `filled` token for its buffer `buf`.
  sim::Task<> await_remote_filled(int buf);
  sim::Task<> release_remote_buffer(int buf);

  machine::CoreApi* api_;
  const rcce::Layout* layout_;

  // Sequence counters (wrap mod 256; 0 is the flags' initial value, so
  // counters start at 1).
  std::array<std::uint8_t, 2> filled_out_{{0, 0}};  // events sent right
  std::array<std::uint8_t, 2> filled_in_{{0, 0}};   // events expected from left
  std::array<std::uint8_t, 2> free_out_{{0, 0}};    // releases sent left
  std::array<std::uint8_t, 2> free_in_{{0, 0}};     // releases expected
  std::array<std::uint64_t, 2> writes_{{0, 0}};     // total writes per buffer
  /// Persistent block scratch (per-call heap temporaries would make cache
  /// behaviour depend on host allocator reuse -- see coll::Stack::scratch).
  aligned_vector<double> scratch_;
};

}  // namespace scc::coll
