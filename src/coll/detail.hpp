// Internal helpers shared by the collective kernels (collectives.cpp and
// algos.cpp). Not part of the public coll API.
#pragma once

#include <algorithm>
#include <span>

#include "coll/stack.hpp"
#include "sim/task.hpp"

namespace scc::coll::detail {

[[nodiscard]] inline std::span<const std::byte> as_b(
    std::span<const double> s) {
  return std::as_bytes(s);
}
[[nodiscard]] inline std::span<std::byte> as_b(std::span<double> s) {
  return std::as_writable_bytes(s);
}

/// Charged local element copy (used for self blocks / initial copies).
inline sim::Task<> charged_copy(machine::CoreApi& api,
                                std::span<const double> src,
                                std::span<double> dst) {
  SCC_EXPECTS(src.size() == dst.size());
  if (src.empty()) co_return;
  co_await api.priv_read(src.data(), src.size_bytes());
  std::copy(src.begin(), src.end(), dst.begin());
  co_await api.compute(src.size() * api.cost().sw.copy_cycles_per_element);
  co_await api.priv_write(dst.data(), dst.size_bytes());
}

}  // namespace scc::coll::detail
