// RCCE_comm-style collective operations, written once and parameterized by
// (a) the point-to-point primitive layer (Stack: blocking / iRCCE /
// lightweight) and (b) the block-split policy (standard / balanced) -- the
// two orthogonal optimization axes of the paper. All functions are SPMD:
// every core calls the same function with its own Stack and buffers.
//
// Default algorithms (matching Section III/IV's description of RCCE_comm):
//   ReduceScatter  -- bucket/ring algorithm (Fig. 2)
//   Allgather      -- ring over full per-core contributions
//   Allreduce      -- ReduceScatter + ring Allgather of the reduced blocks
//   Reduce         -- ReduceScatter + linear gather of blocks to the root
//   Broadcast      -- binomial-tree scatter + ring Allgather (long vectors);
//                     binomial tree of the whole vector (short vectors)
//   Alltoall       -- pairwise exchange rounds (tournament pairing)
//
// Allgather, Alltoall, ReduceScatter and Allreduce additionally accept an
// Algo (coll/algos.hpp) selecting an alternative schedule (Bruck,
// recursive halving/doubling) or Algo::kAuto for the analytic Selector;
// the default is always the paper's algorithm above.
//
// Element type is double (the paper's benchmarks use 8-byte doubles; four
// per 32-byte cache line, which produces the period-4 latency spikes).
#pragma once

#include <span>

#include "coll/algos.hpp"
#include "coll/block_split.hpp"
#include "coll/stack.hpp"
#include "rcce/rcce.hpp"
#include "sim/task.hpp"

namespace scc::coll {

using rcce::ReduceOp;

/// Below this element count Broadcast uses a plain binomial tree instead of
/// scatter + allgather (mirrors RCCE_comm's size switch).
inline constexpr std::size_t kBcastScatterThreshold = 128;

/// Gathers each core's `contribution` (n elements) from all p cores into
/// `gathered` (p*n elements, rank-major).
sim::Task<> allgather(Stack& stack, std::span<const double> contribution,
                      std::span<double> gathered, Algo algo = Algo::kRing);

/// Personalized all-to-all: `sendbuf` holds p blocks of n elements (one per
/// destination); `recvbuf` receives p blocks of n elements (one per
/// source). n = sendbuf.size()/p.
sim::Task<> alltoall(Stack& stack, std::span<const double> sendbuf,
                     std::span<double> recvbuf, Algo algo = Algo::kPairwise);

/// ReduceScatter: fully reduces one block per core. `out` must have n
/// elements; only the owned block's range is guaranteed. Returns the owned
/// block index, which depends on the algorithm ((rank+1) mod p for the
/// ring, rank for recursive halving) -- callers must use the return value.
sim::Task<int> reduce_scatter(Stack& stack, std::span<const double> in,
                              std::span<double> out, ReduceOp op,
                              SplitPolicy policy, Algo algo = Algo::kRing);

/// Reduction to `root`: out is written at the root only.
sim::Task<> reduce(Stack& stack, std::span<const double> in,
                   std::span<double> out, ReduceOp op, int root,
                   SplitPolicy policy);

/// Reduction to all cores.
sim::Task<> allreduce(Stack& stack, std::span<const double> in,
                      std::span<double> out, ReduceOp op, SplitPolicy policy,
                      Algo algo = Algo::kRingRS);

/// Broadcast of `data` from `root` to everyone.
sim::Task<> broadcast(Stack& stack, std::span<double> data, int root,
                      SplitPolicy policy);

/// Scatter: the root's `send` (n*p elements, rank-major) is distributed so
/// that core i receives block i into `recv` (n elements). Binomial tree.
sim::Task<> scatter(Stack& stack, std::span<const double> send,
                    std::span<double> recv, int root);

/// Gather: every core's `send` (n elements) is collected rank-major into
/// the root's `recv` (n*p elements). Binomial tree (mirror of scatter).
sim::Task<> gather(Stack& stack, std::span<const double> send,
                   std::span<double> recv, int root);

/// Ring Allgather with per-core contribution sizes (the v-variant):
/// `counts[i]` elements from core i land at offset sum(counts[0..i)) of
/// `gathered`. Generalizes allgather to irregular decompositions.
sim::Task<> allgatherv(Stack& stack, std::span<const double> contribution,
                       std::span<const std::size_t> counts,
                       std::span<double> gathered);

/// Barrier over the selected stack's flags (dissemination).
sim::Task<> barrier(Stack& stack);

}  // namespace scc::coll
