#include "coll/block_split.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace scc::coll {

std::vector<Block> split_blocks(std::size_t n, int p, SplitPolicy policy) {
  SCC_EXPECTS(p > 0);
  std::vector<Block> blocks(static_cast<std::size_t>(p));
  const std::size_t general = n / static_cast<std::size_t>(p);
  const std::size_t remainder = n % static_cast<std::size_t>(p);
  std::size_t offset = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::size_t count = general;
    if (policy == SplitPolicy::kStandard) {
      if (b == 0) count += remainder;
    } else {
      if (b < remainder) count += 1;
    }
    blocks[b] = {offset, count};
    offset += count;
  }
  SCC_ENSURES(offset == n);
  return blocks;
}

double imbalance_ratio(const std::vector<Block>& blocks) {
  std::size_t max_count = 0;
  std::size_t min_count = 0;
  bool any = false;
  for (const Block& b : blocks) {
    if (b.count == 0) continue;
    if (!any) {
      max_count = min_count = b.count;
      any = true;
    } else {
      max_count = std::max(max_count, b.count);
      min_count = std::min(min_count, b.count);
    }
  }
  if (!any || min_count == 0) return 1.0;
  return static_cast<double>(max_count) / static_cast<double>(min_count);
}

}  // namespace scc::coll
