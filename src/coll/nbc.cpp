#include "coll/nbc.hpp"

#include <utility>

#include "common/contracts.hpp"
#include "machine/scc_machine.hpp"

namespace scc::coll::nbc {

namespace {

/// Dissemination ibarrier: ceil(log2 p) zero-length shift exchanges. The
/// protocol performs at least one flag handshake even for an empty message,
/// so each round synchronizes exactly like a dissemination-barrier round,
/// but over the lane's own flags and with a round gate per round.
Sched run_barrier(Stack& stack) {
  auto& api = stack.api();
  co_await api.overhead(api.cost().sw.coll_call);
  const int p = stack.num_cores();
  for (int d = 1; d < p; d <<= 1) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    co_await stack.exchange_shift({}, {}, d);
  }
}

Sched run_bcast(Stack& stack, std::span<double> data, int root,
                SplitPolicy policy) {
  co_await broadcast(stack, data, root, policy);
}

Sched run_allreduce(Stack& stack, std::span<const double> in,
                    std::span<double> out, ReduceOp op, SplitPolicy policy,
                    Algo algo) {
  co_await allreduce(stack, in, out, op, policy, algo);
}

Sched run_allgather(Stack& stack, std::span<const double> contribution,
                    std::span<double> gathered, Algo algo) {
  co_await allgather(stack, contribution, gathered, algo);
}

Sched run_alltoall(Stack& stack, std::span<const double> sendbuf,
                   std::span<double> recvbuf, Algo algo) {
  co_await alltoall(stack, sendbuf, recvbuf, algo);
}

/// Awaiting a step transfers into the schedule's resume point; the schedule
/// returns control either through a round gate (LaneYielder::on_round) or
/// through its FinalAwaiter. Completion status and exceptions are inspected
/// by the stepper afterwards, never thrown here, so the engine can restore
/// its invariants before propagating a failure.
struct StepAwaiter {
  Sched::promise_type* promise;
  [[nodiscard]] bool await_ready() const noexcept {
    return promise->finished;
  }
  [[nodiscard]] std::coroutine_handle<> await_suspend(
      std::coroutine_handle<> stepper) const noexcept {
    promise->step_continuation = stepper;
    return promise->resume_point;
  }
  void await_resume() const noexcept {}
};

}  // namespace

bool CollRequest::done() const {
  SCC_EXPECTS(engine_ != nullptr);
  return engine_->done(id_);
}

sim::Task<bool> CollRequest::test() {
  SCC_EXPECTS(engine_ != nullptr);
  return engine_->test(id_);
}

sim::Task<> CollRequest::wait() {
  SCC_EXPECTS(engine_ != nullptr);
  return engine_->wait(id_);
}

ProgressEngine::ProgressEngine(machine::CoreApi& api, Prims prims, int lanes)
    : api_(api), prims_(prims) {
  SCC_EXPECTS(lanes >= 1);
  // The blocking layer's synchronous handshake has no completion point that
  // can poll-and-yield, so a blocked step pins the core and a multi-lane
  // engine could close cross-lane wait cycles. One lane is strict FIFO --
  // equivalent to serialized blocking calls -- and always safe.
  SCC_EXPECTS(lanes == 1 || prims != Prims::kBlocking);
  const int p = api.num_cores();
  // The machine's flag file must cover the last lane's flag range; raise
  // SccConfig::flags_per_core for wide engines (harness does this).
  SCC_EXPECTS(rcce::Layout::lane(p, lanes - 1, lanes).flags_needed() <=
              api.machine().config().flags_per_core);
  lanes_.reserve(static_cast<std::size_t>(lanes));
  for (int which = 0; which < lanes; ++which) {
    lanes_.push_back(std::make_unique<Lane>(
        api, rcce::Layout::lane(p, which, lanes), prims));
    // Multi-lane interleaving needs poll-and-yield completions (see
    // Yielder::cooperative); one lane keeps blocking-API-identical timing.
    lanes_.back()->yielder.set_cooperative(lanes > 1);
  }
}

Stack& ProgressEngine::lane_stack(int lane) {
  SCC_EXPECTS(lane >= 0 && lane < lanes());
  return lanes_[static_cast<std::size_t>(lane)]->stack;
}

// Requests go round-robin over lanes by initiation index; the i*() helpers
// must build the schedule against the SAME lane enqueue() will file it in.
ProgressEngine::Lane& ProgressEngine::next_lane() {
  return *lanes_[static_cast<std::size_t>(
      next_id_ % static_cast<RequestId>(lanes_.size()))];
}

CollRequest ProgressEngine::enqueue(Sched sched) {
  Lane& lane = next_lane();
  const RequestId id = next_id_++;
  lane.queue.push_back(Pending{id, std::move(sched)});
  return CollRequest{this, id};
}

CollRequest ProgressEngine::ibarrier() {
  return enqueue(run_barrier(next_lane().stack));
}

CollRequest ProgressEngine::ibcast(std::span<double> data, int root,
                                   SplitPolicy policy) {
  return enqueue(run_bcast(next_lane().stack, data, root, policy));
}

CollRequest ProgressEngine::iallreduce(std::span<const double> in,
                                       std::span<double> out, ReduceOp op,
                                       SplitPolicy policy, Algo algo) {
  return enqueue(run_allreduce(next_lane().stack, in, out, op, policy, algo));
}

CollRequest ProgressEngine::iallgather(std::span<const double> contribution,
                                       std::span<double> gathered, Algo algo) {
  return enqueue(run_allgather(next_lane().stack, contribution, gathered,
                               algo));
}

CollRequest ProgressEngine::ialltoall(std::span<const double> sendbuf,
                                      std::span<double> recvbuf, Algo algo) {
  return enqueue(run_alltoall(next_lane().stack, sendbuf, recvbuf, algo));
}

sim::Task<> ProgressEngine::step_lane(Lane& lane) {
  SCC_EXPECTS(!lane.queue.empty());
  // No re-entrant stepping: a schedule must not call back into the engine.
  SCC_EXPECTS(lane.yielder.active == nullptr);
  Pending& head = lane.queue.front();
  Sched::promise_type& promise = head.sched.promise();
  lane.yielder.active = &promise;
  co_await StepAwaiter{&promise};
  lane.yielder.active = nullptr;
  if (promise.finished) {
    // Retire before propagating any failure so the engine stays usable.
    std::exception_ptr failure = promise.exception;
    lane.queue.pop_front();
    if (failure) std::rethrow_exception(failure);
  }
}

sim::Task<> ProgressEngine::progress() {
  for (auto& lane : lanes_) {
    if (lane->queue.empty()) continue;
    co_await step_lane(*lane);
  }
}

bool ProgressEngine::done(RequestId id) const {
  SCC_EXPECTS(id < next_id_);
  for (const auto& lane : lanes_) {
    for (const Pending& p : lane->queue) {
      if (p.id == id) return false;
    }
  }
  return true;
}

bool ProgressEngine::idle() const {
  for (const auto& lane : lanes_) {
    if (!lane->queue.empty()) return false;
  }
  return true;
}

sim::Task<> ProgressEngine::wait_all() {
  while (!idle()) co_await progress();
}

sim::Task<> ProgressEngine::wait(RequestId id) {
  while (!done(id)) co_await progress();
}

sim::Task<bool> ProgressEngine::test(RequestId id) {
  if (!done(id)) co_await progress();
  co_return done(id);
}

}  // namespace scc::coll::nbc
