// Non-blocking collectives (coll::nbc): resumable schedule state machines
// over the existing Stack abstraction, driven by a per-core ProgressEngine.
//
// A collective schedule is an ordinary kernel coroutine (the same code the
// blocking API runs) whose round boundaries `co_await stack.round_gate()`.
// With a Yielder attached, each gate suspends the schedule and symmetric-
// transfers control back to the engine's stepper, so one core can hold any
// number of collectives in flight and advance them round by round between
// slices of compute. Detached (the blocking API), every gate is a free
// no-op -- zero events, zero simulated time -- so blocking behaviour and
// committed baselines are untouched.
//
// Concurrency model -- lanes. The RCCE-family wire protocol is untagged:
// each (src, dst) pair shares one FIFO flag channel, so two collectives
// whose messages interleave differently on different cores would cross
// streams and fetch each other's payloads. The engine therefore partitions
// the flag index space and MPB payload into `lanes` sublayouts
// (rcce::Layout::lane); each lane owns a full Stack and executes its queue
// strictly FIFO (only the head schedule is stepped). Requests are assigned
// lanes round-robin by initiation index, which is globally consistent
// because initiation order is SPMD: every core must initiate the same
// collectives in the same order, exactly as with the blocking API. Within
// a lane, messages serialize in schedule order; across lanes nothing is
// shared, so concurrent schedules cannot cross. One lane reproduces the
// blocking traffic bit-exactly; more lanes buy real overlap at the price
// of a smaller per-lane chunk size.
//
// Request lifecycle: i*() enqueues a suspended schedule and returns a
// CollRequest. No simulated time is charged at initiation; the kernel's
// own coll_call overhead lands on the first step. test() runs one progress
// pass (each lane head advances one round) and reports completion; wait()
// loops progress until done. See DESIGN.md §17.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <span>
#include <vector>

#include "coll/collectives.hpp"
#include "coll/stack.hpp"
#include "rcce/layout.hpp"
#include "sim/frame_arena.hpp"
#include "sim/task.hpp"

namespace scc::coll::nbc {

/// Root coroutine of one in-flight collective schedule. Lazily started;
/// each step runs from the stored resume point to the next round gate (or
/// to completion). The promise is the Yielder bridge: on_round stores the
/// suspended frame here and transfers back to the stepper.
class Sched {
 public:
  struct promise_type {
    static void* operator new(std::size_t bytes) {
      return sim::frame_alloc(bytes);
    }
    static void operator delete(void* block, std::size_t bytes) noexcept {
      sim::frame_free(block, bytes);
    }

    std::coroutine_handle<> resume_point;      // next step resumes here
    std::coroutine_handle<> step_continuation; // stepper awaiting this step
    std::exception_ptr exception;
    bool finished = false;

    Sched get_return_object() {
      auto h = std::coroutine_handle<promise_type>::from_promise(*this);
      resume_point = h;  // first step starts the root coroutine
      return Sched{h};
    }
    [[nodiscard]] std::suspend_always initial_suspend() const noexcept {
      return {};
    }
    struct FinalAwaiter {
      [[nodiscard]] bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        h.promise().finished = true;
        return h.promise().step_continuation;
      }
      void await_resume() const noexcept {}
    };
    [[nodiscard]] FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
    }
  };

  Sched() = default;
  Sched(Sched&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  Sched& operator=(Sched&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Sched(const Sched&) = delete;
  Sched& operator=(const Sched&) = delete;
  ~Sched() { destroy(); }

  [[nodiscard]] promise_type& promise() const { return handle_.promise(); }
  [[nodiscard]] bool finished() const {
    return handle_ && handle_.promise().finished;
  }

 private:
  explicit Sched(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Engine-issued request id; strictly increasing per (core, engine) in
/// initiation order, identical across cores for an SPMD program.
using RequestId = std::uint64_t;

class ProgressEngine;

/// Handle to one in-flight collective. Copyable; validity is tied to the
/// issuing engine's lifetime.
class CollRequest {
 public:
  CollRequest() = default;
  CollRequest(ProgressEngine* engine, RequestId id)
      : engine_(engine), id_(id) {}

  [[nodiscard]] RequestId id() const { return id_; }
  /// Completed without further progress? (Zero-cost peek.)
  [[nodiscard]] bool done() const;
  /// One progress pass over all lanes, then the completion check.
  [[nodiscard]] sim::Task<bool> test();
  /// Progress until this request completes.
  [[nodiscard]] sim::Task<> wait();

 private:
  ProgressEngine* engine_ = nullptr;
  RequestId id_ = 0;
};

/// Per-core progress engine: owns `lanes` sublayout Stacks and the FIFO
/// queues of in-flight schedules. All i*() initiations must be SPMD
/// (same collectives, same order on every core), like the blocking API.
class ProgressEngine {
 public:
  ProgressEngine(machine::CoreApi& api, Prims prims, int lanes = 1);
  ProgressEngine(const ProgressEngine&) = delete;
  ProgressEngine& operator=(const ProgressEngine&) = delete;

  [[nodiscard]] int lanes() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] Prims prims() const { return prims_; }
  /// The lane's Stack (tests peek layouts; traffic reuses scratch).
  [[nodiscard]] Stack& lane_stack(int lane);

  // --- initiation (no simulated time charged; the kernel's coll_call
  // overhead lands on the first step) ------------------------------------
  // Default algorithms mirror the blocking API exactly, so an nbc call with
  // defaulted algo runs the same schedule as its blocking counterpart.
  CollRequest ibarrier();
  CollRequest ibcast(std::span<double> data, int root, SplitPolicy policy);
  CollRequest iallreduce(std::span<const double> in, std::span<double> out,
                         ReduceOp op, SplitPolicy policy,
                         Algo algo = Algo::kRingRS);
  CollRequest iallgather(std::span<const double> contribution,
                         std::span<double> gathered, Algo algo = Algo::kRing);
  CollRequest ialltoall(std::span<const double> sendbuf,
                        std::span<double> recvbuf,
                        Algo algo = Algo::kPairwise);

  // --- progress ----------------------------------------------------------
  /// One pass: advance the head schedule of every non-empty lane by one
  /// step (one communication round, or to completion).
  [[nodiscard]] sim::Task<> progress();
  /// True when `id` has completed (no progress performed).
  [[nodiscard]] bool done(RequestId id) const;
  /// True when no schedule is in flight.
  [[nodiscard]] bool idle() const;
  /// Progress until everything in flight has completed.
  [[nodiscard]] sim::Task<> wait_all();
  /// Progress until `id` has completed.
  [[nodiscard]] sim::Task<> wait(RequestId id);
  /// One progress pass, then the completion check for `id`.
  [[nodiscard]] sim::Task<bool> test(RequestId id);

 private:
  /// Yielder bridging a lane's Stack to the schedule currently stepping.
  class LaneYielder final : public Yielder {
   public:
    Sched::promise_type* active = nullptr;
    [[nodiscard]] std::coroutine_handle<> on_round(
        std::coroutine_handle<> frame) noexcept override {
      active->resume_point = frame;
      return active->step_continuation;
    }
  };

  struct Pending {
    RequestId id;
    Sched sched;
  };

  /// One lane: a full sublayout Stack plus its FIFO of schedules. Heap-
  /// allocated so the Layout address handed to Rcce stays stable.
  struct Lane {
    Lane(machine::CoreApi& api, rcce::Layout lay, Prims prims)
        : layout(lay), stack(api, layout, prims) {
      stack.set_yielder(&yielder);
    }
    rcce::Layout layout;
    LaneYielder yielder;
    Stack stack;
    std::deque<Pending> queue;
  };

  [[nodiscard]] Lane& next_lane();
  CollRequest enqueue(Sched sched);
  [[nodiscard]] sim::Task<> step_lane(Lane& lane);

  machine::CoreApi& api_;
  Prims prims_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  RequestId next_id_ = 0;
};

}  // namespace scc::coll::nbc
