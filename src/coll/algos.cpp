#include "coll/algos.hpp"

#include <algorithm>
#include <vector>

#include "coll/detail.hpp"

namespace scc::coll {

namespace {

using detail::as_b;
using detail::charged_copy;

[[nodiscard]] std::span<const double> cspan(std::span<double> s) {
  return {s.data(), s.size()};
}

// Selector switch points in elements (doubles). Below the threshold the
// round count dominates the simulated latency (each round pays coll_round
// plus a flag handshake), so the log-round algorithm wins; above it the
// extra copies/volume of the log-round schedules lose to the ring's
// in-place pipelining. Calibrated against bench/tab_algo_select on the
// default 48-core mesh; see DESIGN.md §12.
// Switch points measured by bench/tab_algo_select on the paper's 48-core
// mesh (see the committed selection table and DESIGN.md §12); crossovers
// between grid sizes are placed at the last size the variant won.
constexpr std::size_t kAllgatherShortElems = 128;
constexpr std::size_t kAllgatherBlockingShortElems = 16;
constexpr std::size_t kReduceScatterMaxElems = 2048;
constexpr std::size_t kAllreduceMaxElems = 1024;
constexpr std::size_t kAlltoallShortElems = 32;  // per destination block

[[nodiscard]] constexpr bool is_pow2(int p) {
  return p > 0 && (p & (p - 1)) == 0;
}

/// Non-power-of-two folding (MPICH-style): with r = p - 2^floor(log2 p),
/// original ranks 2i and 2i+1 (i < r) fold into virtual rank i represented
/// by the even rank; ranks >= 2r map to virtual rank (rank - r). The map
/// is monotone, so a virtual-rank range always covers a contiguous range
/// of original ranks/blocks.
struct Fold {
  int m = 1;      // largest power of two <= p
  int r = 0;      // p - m folded pairs
  bool rep = true;  // participates in the power-of-two phase
  int vrank = 0;  // virtual rank (valid when rep)
};

[[nodiscard]] Fold make_fold(int p, int rank) {
  Fold f;
  while (f.m * 2 <= p) f.m *= 2;
  f.r = p - f.m;
  if (rank < 2 * f.r) {
    f.rep = rank % 2 == 0;
    f.vrank = rank / 2;
  } else {
    f.rep = true;
    f.vrank = rank - f.r;
  }
  return f;
}

/// First original rank (== first original block) of virtual rank v; also
/// the representative core of v. vstart(m) == p closes the last range.
[[nodiscard]] int vstart(const Fold& f, int v) {
  return v < f.r ? 2 * v : v + f.r;
}

/// Element range of `data` covering original blocks [lo, hi).
[[nodiscard]] std::span<double> block_range(std::span<double> data,
                                            const std::vector<Block>& blocks,
                                            int lo, int hi) {
  if (lo >= hi) return data.subspan(0, 0);
  const std::size_t first = blocks[static_cast<std::size_t>(lo)].offset;
  const Block& last = blocks[static_cast<std::size_t>(hi - 1)];
  return data.subspan(first, last.offset + last.count - first);
}

/// Element range covering virtual blocks [vlo, vhi).
[[nodiscard]] std::span<double> vrange(const Fold& f, std::span<double> data,
                                       const std::vector<Block>& blocks,
                                       int vlo, int vhi) {
  return block_range(data, blocks, vstart(f, vlo), vstart(f, vhi));
}

}  // namespace

std::optional<Algo> parse_algo(std::string_view name) {
  for (const Algo a :
       {Algo::kAuto, Algo::kRing, Algo::kRecursiveHalving, Algo::kBruck,
        Algo::kRecursiveDoubling, Algo::kRingRS, Algo::kPairwise}) {
    if (name == algo_name(a)) return a;
  }
  return std::nullopt;
}

const std::vector<Algo>& algos_for(CollKind kind) {
  static const std::vector<Algo> allgather{Algo::kRing, Algo::kBruck,
                                           Algo::kRecursiveDoubling};
  static const std::vector<Algo> alltoall{Algo::kPairwise, Algo::kBruck};
  static const std::vector<Algo> reduce_scatter{Algo::kRing,
                                                Algo::kRecursiveHalving};
  static const std::vector<Algo> allreduce{Algo::kRingRS,
                                           Algo::kRecursiveDoubling};
  switch (kind) {
    case CollKind::kAllgather: return allgather;
    case CollKind::kAlltoall: return alltoall;
    case CollKind::kReduceScatter: return reduce_scatter;
    case CollKind::kAllreduce: return allreduce;
  }
  return allgather;
}

Algo paper_algo(CollKind kind) { return algos_for(kind).front(); }

bool algo_valid_for(CollKind kind, Algo algo) {
  const std::vector<Algo>& valid = algos_for(kind);
  return std::find(valid.begin(), valid.end(), algo) != valid.end();
}

Algo select_algo(CollKind kind, std::size_t n, int p, Prims prims) {
  // The blocking layer serializes even-distance shift rounds around each
  // exchange cycle (Stack::exchange_shift's cycle-breaker ordering), which
  // eats Bruck's round-count advantage; the pairwise rounds of recursive
  // halving/doubling stay fully parallel on every layer.
  const bool blocking = prims == Prims::kBlocking;
  switch (kind) {
    case CollKind::kAllgather:
      if (p <= 2) return Algo::kRing;
      if (blocking) {
        // Bruck's shift rounds serialize on the blocking layer, so only
        // recursive doubling's pairwise rounds beat the ring, and only in
        // the latency regime.
        return n <= kAllgatherBlockingShortElems ? Algo::kRecursiveDoubling
                                                 : Algo::kRing;
      }
      if (n <= kAllgatherShortElems) {
        return is_pow2(p) ? Algo::kRecursiveDoubling : Algo::kBruck;
      }
      return Algo::kRing;
    case CollKind::kReduceScatter:
      // Same total volume as the ring but ceil(log2 p) rounds instead of
      // p-1; the ring only recovers once its pipelined single-block
      // transfers amortize all those rounds (large vectors).
      if (p <= 2) return Algo::kRing;
      return n <= kReduceScatterMaxElems ? Algo::kRecursiveHalving
                                         : Algo::kRing;
    case CollKind::kAllreduce:
      // Full-vector doubling trades ~2n of ring volume for ceil(log2 p)*n,
      // which wins until the vector is large enough that volume dominates
      // the 2(p-1) ring rounds.
      if (p <= 2) return Algo::kRingRS;
      return n <= kAllreduceMaxElems ? Algo::kRecursiveDoubling
                                     : Algo::kRingRS;
    case CollKind::kAlltoall:
      // Bruck halves the round count but multiplies volume by ~log2(p)/2;
      // only the per-block latency regime benefits, and only where shift
      // rounds do not serialize.
      if (p > 2 && !blocking && n <= kAlltoallShortElems) return Algo::kBruck;
      return Algo::kPairwise;
  }
  return Algo::kRing;
}

sim::Task<> allgather_bruck(Stack& stack, std::span<const double> contribution,
                            std::span<double> gathered) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  const std::size_t n = contribution.size();
  SCC_EXPECTS(gathered.size() == n * static_cast<std::size_t>(p));
  if (p == 1) {
    co_await charged_copy(api, contribution, gathered);
    co_return;
  }
  std::span<double> work =
      stack.scratch(n * static_cast<std::size_t>(p), 1);
  co_await charged_copy(api, contribution, work.subspan(0, n));
  for (int d = 1; d < p; d <<= 1) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    const auto cnt = static_cast<std::size_t>(std::min(d, p - d));
    co_await stack.exchange_shift(
        as_b(cspan(work.subspan(0, cnt * n))),
        as_b(work.subspan(static_cast<std::size_t>(d) * n, cnt * n)), -d);
  }
  // work[j] now holds block (rank + j) mod p; rotate to rank-major order.
  if (!gathered.empty()) {
    for (int j = 0; j < p; ++j) {
      const auto dst = static_cast<std::size_t>((rank + j) % p) * n;
      std::copy_n(work.data() + static_cast<std::size_t>(j) * n, n,
                  gathered.data() + dst);
    }
    co_await api.priv_read(work.data(), work.size_bytes());
    co_await api.priv_write(gathered.data(), gathered.size_bytes());
  }
}

sim::Task<> allgather_recursive_doubling(Stack& stack,
                                         std::span<const double> contribution,
                                         std::span<double> gathered) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  const std::size_t n = contribution.size();
  SCC_EXPECTS(gathered.size() == n * static_cast<std::size_t>(p));
  co_await charged_copy(api, contribution,
                        gathered.subspan(static_cast<std::size_t>(rank) * n,
                                         n));
  if (p == 1) co_return;
  const Fold f = make_fold(p, rank);
  const auto blocks_of = [&](int lo, int hi) {
    return gathered.subspan(static_cast<std::size_t>(lo) * n,
                            static_cast<std::size_t>(hi - lo) * n);
  };
  // Fold: the odd rank of each folded pair hands its block to the even
  // representative.
  if (rank < 2 * f.r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    if (rank % 2 == 1) {
      co_await stack.send(as_b(cspan(blocks_of(rank, rank + 1))), rank - 1);
    } else {
      co_await stack.recv(as_b(blocks_of(rank + 1, rank + 2)), rank + 1);
    }
  }
  if (f.rep) {
    for (int mask = 1; mask < f.m; mask <<= 1) {
      co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
      const int mybase = (f.vrank / mask) * mask;
      const int pbase = mybase ^ mask;
      const int partner = vstart(f, f.vrank ^ mask);
      co_await stack.exchange_pair(
          as_b(cspan(blocks_of(vstart(f, mybase), vstart(f, mybase + mask)))),
          as_b(blocks_of(vstart(f, pbase), vstart(f, pbase + mask))),
          partner);
    }
  }
  // Unfold: representatives push the completed vector back to the odd rank
  // of their pair.
  if (rank < 2 * f.r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    if (rank % 2 == 0) {
      co_await stack.send(as_b(std::span<const double>(gathered)), rank + 1);
    } else {
      co_await stack.recv(as_b(gathered), rank - 1);
    }
  }
}

sim::Task<int> reduce_scatter_recursive_halving(Stack& stack,
                                                std::span<const double> in,
                                                std::span<double> out,
                                                ReduceOp op,
                                                SplitPolicy policy) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  SCC_EXPECTS(out.size() == in.size());
  co_await charged_copy(api, in, out);
  if (p == 1) co_return 0;
  const auto blocks = split_blocks(in.size(), p, policy);
  const Fold f = make_fold(p, rank);
  std::span<double> tmp = stack.scratch(in.size(), 0);
  // Fold: the odd rank of each pair sends its whole accumulator; the even
  // representative reduces it in, then owns the pair's two blocks.
  if (rank < 2 * f.r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    if (rank % 2 == 1) {
      co_await stack.send(as_b(cspan(out)), rank - 1);
    } else {
      std::span<double> t = tmp.subspan(0, out.size());
      co_await stack.recv(as_b(t), rank + 1);
      co_await rcce::apply_reduce(api, t, out, op);
    }
  }
  if (f.rep) {
    // Vector halving among the representatives: in each round, keep the
    // half of the still-owed virtual range containing vrank, exchange the
    // other half with the partner, and reduce what arrives.
    int lo = 0;
    int hi = f.m;
    for (int mask = f.m >> 1; mask >= 1; mask >>= 1) {
      co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
      const int partner = vstart(f, f.vrank ^ mask);
      int keep_lo = lo;
      int keep_hi = lo + mask;
      int send_lo = lo + mask;
      int send_hi = hi;
      if (f.vrank & mask) {
        keep_lo = lo + mask;
        keep_hi = hi;
        send_lo = lo;
        send_hi = lo + mask;
      }
      std::span<double> keep = vrange(f, out, blocks, keep_lo, keep_hi);
      std::span<double> t = tmp.subspan(0, keep.size());
      co_await stack.exchange_pair(
          as_b(cspan(vrange(f, out, blocks, send_lo, send_hi))), as_b(t),
          partner);
      co_await rcce::apply_reduce(api, t, keep, op);
      lo = keep_lo;
      hi = keep_hi;
    }
  }
  // Unfold: representatives of folded pairs return the odd rank's reduced
  // block. Every core ends up owning original block `rank`.
  if (rank < 2 * f.r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    const Block& b = blocks[static_cast<std::size_t>(rank | 1)];
    if (rank % 2 == 0) {
      co_await stack.send(as_b(cspan(out.subspan(b.offset, b.count))),
                          rank + 1);
    } else {
      co_await stack.recv(as_b(out.subspan(b.offset, b.count)), rank - 1);
    }
  }
  co_return rank;
}

sim::Task<> allreduce_recursive_doubling(Stack& stack,
                                         std::span<const double> in,
                                         std::span<double> out, ReduceOp op) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  SCC_EXPECTS(out.size() == in.size());
  co_await charged_copy(api, in, out);
  if (p == 1) co_return;
  const Fold f = make_fold(p, rank);
  std::span<double> tmp = stack.scratch(out.size(), 0);
  if (rank < 2 * f.r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    if (rank % 2 == 1) {
      co_await stack.send(as_b(cspan(out)), rank - 1);
    } else {
      co_await stack.recv(as_b(tmp), rank + 1);
      co_await rcce::apply_reduce(api, tmp, out, op);
    }
  }
  if (f.rep) {
    for (int mask = 1; mask < f.m; mask <<= 1) {
      co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
      const int partner = vstart(f, f.vrank ^ mask);
      co_await stack.exchange_pair(as_b(cspan(out)), as_b(tmp), partner);
      co_await rcce::apply_reduce(api, tmp, out, op);
    }
  }
  if (rank < 2 * f.r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    if (rank % 2 == 0) {
      co_await stack.send(as_b(cspan(out)), rank + 1);
    } else {
      co_await stack.recv(as_b(out), rank - 1);
    }
  }
}

sim::Task<> alltoall_bruck(Stack& stack, std::span<const double> sendbuf,
                           std::span<double> recvbuf) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  SCC_EXPECTS(sendbuf.size() == recvbuf.size());
  SCC_EXPECTS(sendbuf.size() % static_cast<std::size_t>(p) == 0);
  const std::size_t n = sendbuf.size() / static_cast<std::size_t>(p);
  std::span<double> work = stack.scratch(sendbuf.size(), 0);
  // Rotate so work[j] is the block destined to (rank + j) mod p; block 0
  // (the self block) then never moves.
  if (!sendbuf.empty()) {
    for (int j = 0; j < p; ++j) {
      const auto src = static_cast<std::size_t>((rank + j) % p) * n;
      std::copy_n(sendbuf.data() + src, n,
                  work.data() + static_cast<std::size_t>(j) * n);
    }
    co_await api.priv_read(sendbuf.data(), sendbuf.size_bytes());
    co_await api.priv_write(work.data(), work.size_bytes());
  }
  // Round d forwards every block whose index has bit d set by d ranks;
  // each block travels exactly the set bits of its index, so after the
  // rounds work[i] holds the block from source (rank - i) mod p.
  for (int d = 1; d < p; d <<= 1) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    std::size_t cnt = 0;
    for (int j = d; j < p; ++j) {
      if ((j & d) != 0) ++cnt;
    }
    std::span<double> spack = stack.scratch(cnt * n, 1);
    std::span<double> rpack = stack.scratch(cnt * n, 2);
    std::size_t k = 0;
    for (int j = d; j < p; ++j) {
      if ((j & d) == 0) continue;
      co_await charged_copy(api,
                            cspan(work.subspan(static_cast<std::size_t>(j) * n,
                                               n)),
                            spack.subspan(k * n, n));
      ++k;
    }
    co_await stack.exchange_shift(as_b(cspan(spack)), as_b(rpack), d);
    k = 0;
    for (int j = d; j < p; ++j) {
      if ((j & d) == 0) continue;
      co_await charged_copy(api, cspan(rpack.subspan(k * n, n)),
                            work.subspan(static_cast<std::size_t>(j) * n, n));
      ++k;
    }
  }
  // Inverse rotation into source-major order.
  if (!recvbuf.empty()) {
    for (int j = 0; j < p; ++j) {
      const auto dst = static_cast<std::size_t>((rank - j + p) % p) * n;
      std::copy_n(work.data() + static_cast<std::size_t>(j) * n, n,
                  recvbuf.data() + dst);
    }
    co_await api.priv_read(work.data(), work.size_bytes());
    co_await api.priv_write(recvbuf.data(), recvbuf.size_bytes());
  }
}

}  // namespace scc::coll
