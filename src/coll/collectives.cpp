#include "coll/collectives.hpp"

#include <algorithm>
#include <vector>

#include "coll/detail.hpp"
#include "common/aligned.hpp"

namespace scc::coll {

namespace {

using detail::as_b;
using detail::charged_copy;

/// Ring ReduceScatter kernel (paper Fig. 2). `work` must already contain
/// this core's input. After p-1 rounds, block (rank+1)%p of `work` holds
/// the full reduction.
sim::Task<> ring_reduce_scatter(Stack& stack, std::span<double> work,
                                ReduceOp op, const std::vector<Block>& blocks) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  const int right = (rank + 1) % p;
  const int left = (rank + p - 1) % p;
  std::size_t max_count = 0;
  for (const Block& b : blocks) max_count = std::max(max_count, b.count);
  std::span<double> tmp = stack.scratch(max_count, 0);
  for (int r = 0; r < p - 1; ++r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    const Block& sb = blocks[static_cast<std::size_t>((rank - r + p) % p)];
    const Block& rb = blocks[static_cast<std::size_t>((rank - r - 1 + p) % p)];
    std::span<double> recv_tmp = tmp.subspan(0, rb.count);
    co_await stack.exchange(as_b(work.subspan(sb.offset, sb.count)), right,
                            as_b(recv_tmp), left);
    co_await rcce::apply_reduce(api, recv_tmp,
                                work.subspan(rb.offset, rb.count), op);
  }
}

/// Ring Allgather of the blocks of `data`, where core i initially holds
/// block (i + off) mod p. After p-1 rounds every core holds every block.
sim::Task<> ring_allgather_blocks(Stack& stack, std::span<double> data,
                                  const std::vector<Block>& blocks, int off) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  const int right = (rank + 1) % p;
  const int left = (rank + p - 1) % p;
  for (int r = 0; r < p - 1; ++r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    const Block& sb =
        blocks[static_cast<std::size_t>(((rank + off - r) % p + p) % p)];
    const Block& rb =
        blocks[static_cast<std::size_t>(((rank + off - r - 1) % p + p) % p)];
    co_await stack.exchange(as_b(std::span<const double>(
                                data.subspan(sb.offset, sb.count))),
                            right, as_b(data.subspan(rb.offset, rb.count)),
                            left);
  }
}

/// Binomial-tree reduce of the full vector to `root` (RCCE_comm's
/// short-vector variant; used when n < p so the ring would degenerate to
/// empty blocks).
sim::Task<> reduce_binomial(Stack& stack, std::span<const double> in,
                            std::span<double> out, ReduceOp op, int root) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rel = (stack.rank() - root + p) % p;
  std::span<double> acc = stack.scratch(in.size(), 1);
  std::copy(in.begin(), in.end(), acc.begin());
  co_await api.priv_read(in.data(), in.size_bytes());
  co_await api.priv_write(acc.data(), acc.size_bytes());
  std::span<double> tmp = stack.scratch(in.size(), 2);
  int mask = 1;
  while (mask < p) {
    co_await stack.round_gate();
    if (rel & mask) {
      const int dst = (rel - mask + root + p) % p;
      co_await stack.send(as_b(std::span<const double>(acc.data(), acc.size())),
                          dst);
      break;
    }
    if (rel + mask < p) {
      const int src = (rel + mask + root) % p;
      co_await stack.recv(as_b(tmp), src);
      co_await rcce::apply_reduce(api, tmp, acc, op);
    }
    mask <<= 1;
  }
  if (rel == 0) {
    co_await charged_copy(api, acc, out);
  }
}

/// Binomial-tree broadcast of the full vector. The single shared kernel:
/// both the Allreduce short path and Broadcast's short-vector path use it
/// (they used to carry byte-identical copies, a drift hazard).
sim::Task<> bcast_binomial(Stack& stack, std::span<double> data, int root) {
  const int p = stack.num_cores();
  const int rel = (stack.rank() - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (rel & mask) {
      const int src = (rel - mask + root + p) % p;
      co_await stack.round_gate();
      co_await stack.recv(as_b(data), src);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    co_await stack.round_gate();
    if (rel + mask < p) {
      const int dst = (rel + mask + root) % p;
      co_await stack.send(as_b(std::span<const double>(data)), dst);
    }
    mask >>= 1;
  }
  co_return;
}

}  // namespace

sim::Task<> allgather(Stack& stack, std::span<const double> contribution,
                      std::span<double> gathered, Algo algo) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  const std::size_t n = contribution.size();
  SCC_EXPECTS(gathered.size() == n * static_cast<std::size_t>(p));
  if (algo == Algo::kAuto) {
    algo = select_algo(CollKind::kAllgather, n, p, stack.prims());
  }
  SCC_EXPECTS(algo_valid_for(CollKind::kAllgather, algo));
  co_await api.overhead(api.cost().sw.coll_call);
  if (algo == Algo::kBruck) {
    co_await allgather_bruck(stack, contribution, gathered);
    co_return;
  }
  if (algo == Algo::kRecursiveDoubling) {
    co_await allgather_recursive_doubling(stack, contribution, gathered);
    co_return;
  }
  co_await charged_copy(api, contribution,
                        gathered.subspan(static_cast<std::size_t>(rank) * n, n));
  if (p == 1) co_return;
  const int right = (rank + 1) % p;
  const int left = (rank + p - 1) % p;
  for (int r = 0; r < p - 1; ++r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    const auto send_of = static_cast<std::size_t>((rank - r + p) % p);
    const auto recv_of = static_cast<std::size_t>((rank - r - 1 + p) % p);
    co_await stack.exchange(
        as_b(std::span<const double>(gathered.subspan(send_of * n, n))), right,
        as_b(gathered.subspan(recv_of * n, n)), left);
  }
}

sim::Task<> alltoall(Stack& stack, std::span<const double> sendbuf,
                     std::span<double> recvbuf, Algo algo) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  SCC_EXPECTS(sendbuf.size() == recvbuf.size());
  SCC_EXPECTS(sendbuf.size() % static_cast<std::size_t>(p) == 0);
  const std::size_t n = sendbuf.size() / static_cast<std::size_t>(p);
  if (algo == Algo::kAuto) {
    algo = select_algo(CollKind::kAlltoall, n, p, stack.prims());
  }
  SCC_EXPECTS(algo_valid_for(CollKind::kAlltoall, algo));
  co_await api.overhead(api.cost().sw.coll_call);
  if (algo == Algo::kBruck) {
    co_await alltoall_bruck(stack, sendbuf, recvbuf);
    co_return;
  }
  // Tournament pairing: in round r, i exchanges with the j solving
  // i + j == r (mod p); pairs are disjoint, so the schedule is contention-
  // and deadlock-free. When the round pairs a core with itself it copies
  // its own block locally.
  for (int r = 0; r < p; ++r) {
    co_await stack.round_gate();
    co_await api.overhead(api.cost().sw.coll_round);
    const int partner = ((r - rank) % p + p) % p;
    const auto soff = static_cast<std::size_t>(partner) * n;
    const auto roff = static_cast<std::size_t>(partner) * n;
    if (partner == rank) {
      co_await charged_copy(api, sendbuf.subspan(soff, n),
                            recvbuf.subspan(roff, n));
      continue;
    }
    co_await stack.exchange_pair(as_b(sendbuf.subspan(soff, n)),
                                 as_b(recvbuf.subspan(roff, n)), partner);
  }
}

sim::Task<int> reduce_scatter(Stack& stack, std::span<const double> in,
                              std::span<double> out, ReduceOp op,
                              SplitPolicy policy, Algo algo) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  SCC_EXPECTS(out.size() == in.size());
  if (algo == Algo::kAuto) {
    algo = select_algo(CollKind::kReduceScatter, in.size(), p, stack.prims());
  }
  SCC_EXPECTS(algo_valid_for(CollKind::kReduceScatter, algo));
  co_await api.overhead(api.cost().sw.coll_call);
  if (algo == Algo::kRecursiveHalving) {
    co_return co_await reduce_scatter_recursive_halving(stack, in, out, op,
                                                        policy);
  }
  co_await charged_copy(api, in, out);
  if (p == 1) co_return 0;
  const auto blocks = split_blocks(in.size(), p, policy);
  co_await ring_reduce_scatter(stack, out, op, blocks);
  co_return (rank + 1) % p;
}

sim::Task<> reduce(Stack& stack, std::span<const double> in,
                   std::span<double> out, ReduceOp op, int root,
                   SplitPolicy policy) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  SCC_EXPECTS(root >= 0 && root < p);
  // Only the root's out buffer is written, but it must hold the full
  // vector: charged_copy and the linear-gather recvs below write
  // out[b.offset, b.offset+b.count) for every block.
  SCC_EXPECTS(rank != root || out.size() == in.size());
  co_await api.overhead(api.cost().sw.coll_call);
  if (p == 1) {
    co_await charged_copy(api, in, out);
    co_return;
  }
  if (in.size() < static_cast<std::size_t>(p)) {
    co_await reduce_binomial(stack, in, out, op, root);
    co_return;
  }
  // Phase 1: ring ReduceScatter over a scratch copy of the input.
  std::span<double> work = stack.scratch(in.size(), 1);
  co_await charged_copy(api, in, work);
  const auto blocks = split_blocks(in.size(), p, policy);
  co_await ring_reduce_scatter(stack, work, op, blocks);
  // Phase 2: linear gather of the reduced blocks to the root. Core j owns
  // block (j+1)%p; the root drains peers in ring order.
  if (rank == root) {
    const Block& own = blocks[static_cast<std::size_t>((root + 1) % p)];
    co_await charged_copy(api, work.subspan(own.offset, own.count),
                          out.subspan(own.offset, own.count));
    for (int k = 1; k < p; ++k) {
      co_await stack.round_gate();
      const int src = (root + k) % p;
      const Block& b = blocks[static_cast<std::size_t>((src + 1) % p)];
      co_await stack.recv(as_b(out.subspan(b.offset, b.count)), src);
    }
  } else {
    co_await stack.round_gate();
    const Block& own = blocks[static_cast<std::size_t>((rank + 1) % p)];
    co_await stack.send(
        as_b(std::span<const double>(work.subspan(own.offset, own.count))),
        root);
  }
}

sim::Task<> allreduce(Stack& stack, std::span<const double> in,
                      std::span<double> out, ReduceOp op, SplitPolicy policy,
                      Algo algo) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  SCC_EXPECTS(out.size() == in.size());
  if (algo == Algo::kAuto) {
    algo = select_algo(CollKind::kAllreduce, in.size(), p, stack.prims());
  }
  SCC_EXPECTS(algo_valid_for(CollKind::kAllreduce, algo));
  co_await api.overhead(api.cost().sw.coll_call);
  if (algo == Algo::kRecursiveDoubling) {
    co_await allreduce_recursive_doubling(stack, in, out, op);
    co_return;
  }
  if (p > 1 && in.size() < static_cast<std::size_t>(p)) {
    // Short vectors: binomial reduce to 0 + binomial broadcast
    // (RCCE_comm's small-message variant).
    co_await reduce_binomial(stack, in, out, op, 0);
    co_await bcast_binomial(stack, out, 0);
    co_return;
  }
  co_await charged_copy(api, in, out);
  if (p == 1) co_return;
  const auto blocks = split_blocks(in.size(), p, policy);
  co_await ring_reduce_scatter(stack, out, op, blocks);
  // Core i now owns reduced block (i+1)%p -> allgather with offset 1.
  co_await ring_allgather_blocks(stack, out, blocks, 1);
}

namespace {

/// Binomial-tree scatter: after it, the core with relative rank r holds
/// block r (relative to root) of `data`.
sim::Task<> scatter_binomial(Stack& stack, std::span<double> data,
                             const std::vector<Block>& blocks, int root) {
  const int p = stack.num_cores();
  const int rank = stack.rank();
  const int rel = (rank - root + p) % p;
  const auto range_bytes = [&](int lo, int hi) {
    // Element range covering relative blocks [lo, hi).
    hi = std::min(hi, p);
    const std::size_t first = blocks[static_cast<std::size_t>(lo)].offset;
    const Block& last = blocks[static_cast<std::size_t>(hi - 1)];
    return data.subspan(first, last.offset + last.count - first);
  };
  int recv_mask = 0;
  if (rel != 0) {
    int mask = 1;
    while ((rel & mask) == 0) mask <<= 1;
    const int src = (rel - mask + root + p) % p;
    co_await stack.round_gate();
    co_await stack.recv(as_b(range_bytes(rel, rel + mask)), src);
    recv_mask = mask;
  } else {
    recv_mask = 1;
    while (recv_mask < p) recv_mask <<= 1;
  }
  for (int mask = recv_mask >> 1; mask > 0; mask >>= 1) {
    co_await stack.round_gate();
    if (rel + mask < p) {
      const int dst = (rel + mask + root) % p;
      auto span = range_bytes(rel + mask, rel + 2 * mask);
      co_await stack.send(as_b(std::span<const double>(span)), dst);
    }
  }
  co_return;
}

}  // namespace

sim::Task<> broadcast(Stack& stack, std::span<double> data, int root,
                      SplitPolicy policy) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  SCC_EXPECTS(root >= 0 && root < p);
  co_await api.overhead(api.cost().sw.coll_call);
  if (p == 1) co_return;
  if (data.size() < kBcastScatterThreshold ||
      data.size() < static_cast<std::size_t>(p)) {
    co_await bcast_binomial(stack, data, root);
    co_return;
  }
  // Long-vector path: binomial scatter + ring allgather of blocks. Blocks
  // are indexed relative to the root: relative rank r ends the scatter
  // holding relative block r, i.e. core i holds block (i - root) mod p.
  // Relative block b covers the same element range for every policy, so the
  // split policy shapes the load balance exactly as in Section IV-C.
  const auto blocks = split_blocks(data.size(), p, policy);
  co_await scatter_binomial(stack, data, blocks, root);
  // Core i now holds block (i - root) mod p: ring-allgather with offset
  // -root (mod p).
  co_await ring_allgather_blocks(stack, data, blocks, (p - root % p) % p);
  (void)rank;
}


sim::Task<> scatter(Stack& stack, std::span<const double> send,
                    std::span<double> recv, int root) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  const std::size_t n = recv.size();
  SCC_EXPECTS(root >= 0 && root < p);
  SCC_EXPECTS(rank != root || send.size() == n * static_cast<std::size_t>(p));
  co_await api.overhead(api.cost().sw.coll_call);
  if (p == 1) {
    co_await charged_copy(api, send.first(n), recv);
    co_return;
  }
  // Work in RELATIVE block space (block j belongs to core (root+j)%p) so
  // every binomial subtree covers a contiguous range; the root rotates its
  // rank-major buffer into that order first.
  const int rel = (rank - root + p) % p;
  std::span<double> work =
      stack.scratch(n * static_cast<std::size_t>(p), 1);
  if (rank == root) {
    for (int j = 0; j < p; ++j) {
      const auto src = static_cast<std::size_t>((root + j) % p) * n;
      std::copy_n(send.data() + src, n,
                  work.data() + static_cast<std::size_t>(j) * n);
    }
    co_await api.priv_read(send.data(), send.size_bytes());
    co_await api.priv_write(work.data(), work.size_bytes());
  }
  int recv_mask = 0;
  if (rel != 0) {
    int mask = 1;
    while ((rel & mask) == 0) mask <<= 1;
    const int src_core = (rel - mask + root + p) % p;
    const int hi = std::min(rel + mask, p);
    co_await stack.round_gate();
    co_await stack.recv(
        as_b(work.subspan(static_cast<std::size_t>(rel) * n,
                          static_cast<std::size_t>(hi - rel) * n)),
        src_core);
    recv_mask = mask;
  } else {
    recv_mask = 1;
    while (recv_mask < p) recv_mask <<= 1;
  }
  for (int mask = recv_mask >> 1; mask > 0; mask >>= 1) {
    co_await stack.round_gate();
    if (rel + mask < p) {
      const int dst = (rel + mask + root) % p;
      const int hi = std::min(rel + 2 * mask, p);
      co_await stack.send(
          as_b(std::span<const double>(
              work.subspan(static_cast<std::size_t>(rel + mask) * n,
                           static_cast<std::size_t>(hi - rel - mask) * n))),
          dst);
    }
  }
  co_await charged_copy(
      api, work.subspan(static_cast<std::size_t>(rel) * n, n), recv);
}

sim::Task<> gather(Stack& stack, std::span<const double> send,
                   std::span<double> recv, int root) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  const std::size_t n = send.size();
  SCC_EXPECTS(root >= 0 && root < p);
  SCC_EXPECTS(rank != root || recv.size() == n * static_cast<std::size_t>(p));
  co_await api.overhead(api.cost().sw.coll_call);
  if (p == 1) {
    co_await charged_copy(api, send, recv.first(n));
    co_return;
  }
  const int rel = (rank - root + p) % p;
  std::span<double> work =
      stack.scratch(n * static_cast<std::size_t>(p), 1);
  co_await charged_copy(api, send,
                        work.subspan(static_cast<std::size_t>(rel) * n, n));
  // Mirror of the binomial scatter: children push their accumulated
  // relative range up toward the root.
  int mask = 1;
  while (mask < p) {
    co_await stack.round_gate();
    if (rel & mask) {
      const int dst = (rel - mask + root + p) % p;
      const int hi = std::min(rel + mask, p);
      co_await stack.send(
          as_b(std::span<const double>(
              work.subspan(static_cast<std::size_t>(rel) * n,
                           static_cast<std::size_t>(hi - rel) * n))),
          dst);
      break;
    }
    if (rel + mask < p) {
      const int src_core = (rel + mask + root) % p;
      const int hi = std::min(rel + 2 * mask, p);
      co_await stack.recv(
          as_b(work.subspan(static_cast<std::size_t>(rel + mask) * n,
                            static_cast<std::size_t>(hi - rel - mask) * n)),
          src_core);
    }
    mask <<= 1;
  }
  if (rank == root) {
    // Rotate relative block order back to rank-major.
    for (int j = 0; j < p; ++j) {
      const auto dst = static_cast<std::size_t>((root + j) % p) * n;
      std::copy_n(work.data() + static_cast<std::size_t>(j) * n, n,
                  recv.data() + dst);
    }
    co_await api.priv_read(work.data(), work.size_bytes());
    co_await api.priv_write(recv.data(), recv.size_bytes());
  }
}

sim::Task<> allgatherv(Stack& stack, std::span<const double> contribution,
                       std::span<const std::size_t> counts,
                       std::span<double> gathered) {
  auto& api = stack.api();
  const int p = stack.num_cores();
  const int rank = stack.rank();
  SCC_EXPECTS(counts.size() == static_cast<std::size_t>(p));
  SCC_EXPECTS(contribution.size() == counts[static_cast<std::size_t>(rank)]);
  // Per-core blocks at prefix-sum offsets.
  std::vector<Block> blocks(static_cast<std::size_t>(p));
  std::size_t offset = 0;
  for (int i = 0; i < p; ++i) {
    blocks[static_cast<std::size_t>(i)] = {offset,
                                           counts[static_cast<std::size_t>(i)]};
    offset += counts[static_cast<std::size_t>(i)];
  }
  SCC_EXPECTS(gathered.size() == offset);
  co_await api.overhead(api.cost().sw.coll_call);
  const Block& mine = blocks[static_cast<std::size_t>(rank)];
  co_await charged_copy(api, contribution,
                        gathered.subspan(mine.offset, mine.count));
  if (p == 1) co_return;
  // Ring: core i initially holds block i (offset 0 in the table).
  co_await ring_allgather_blocks(stack, gathered, blocks, 0);
}

sim::Task<> barrier(Stack& stack) {
  co_await stack.api().overhead(stack.api().cost().sw.coll_call);
  co_await stack.barrier();
}

}  // namespace scc::coll
