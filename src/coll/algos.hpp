// Algorithm variants for the collectives, beyond the single schedule per
// collective that RCCE_comm (and the paper's evaluation) hard-codes. The
// paper's own observation -- the best schedule depends on the vector size
// and on how much each synchronization point costs -- generalizes to the
// classic latency/bandwidth algorithm space:
//
//   Allgather      -- ring (paper) | Bruck | recursive doubling
//   ReduceScatter  -- ring (paper) | recursive halving
//   Allreduce      -- ring RS + ring AG (paper) | recursive doubling
//   Alltoall       -- pairwise tournament (paper) | Bruck
//
// Every variant is written against the same Stack abstraction, so each one
// runs unchanged on all three message-passing layers (blocking RCCE, iRCCE,
// lightweight) and produces element-wise identical results -- which the
// conformance harness checks per (collective, algorithm, stack, policy)
// cell. select_algo() is the analytic Selector; bench/tab_algo_select
// measures the actual crossovers and emits the selection table.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "coll/block_split.hpp"
#include "coll/stack.hpp"
#include "rcce/rcce.hpp"
#include "sim/task.hpp"

namespace scc::coll {

using rcce::ReduceOp;

enum class Algo {
  kAuto,               // let select_algo() pick from (collective, n, p, prims)
  kRing,               // paper ring (Allgather, ReduceScatter)
  kRecursiveHalving,   // ReduceScatter: vector halving over ceil(log2 p) rounds
  kBruck,              // Allgather / Alltoall: log-round shifted exchange
  kRecursiveDoubling,  // Allgather / Allreduce: pairwise doubling rounds
  kRingRS,             // paper Allreduce (ring ReduceScatter + ring Allgather)
  kPairwise,           // paper Alltoall (tournament pairing)
};

/// The collectives that have an algorithm dimension. Kept separate from
/// harness::Collective (coll cannot depend on harness); the harness maps
/// its enum onto this one.
enum class CollKind { kAllgather, kAlltoall, kReduceScatter, kAllreduce };

[[nodiscard]] constexpr std::string_view algo_name(Algo a) {
  switch (a) {
    case Algo::kAuto: return "auto";
    case Algo::kRing: return "ring";
    case Algo::kRecursiveHalving: return "recursive-halving";
    case Algo::kBruck: return "bruck";
    case Algo::kRecursiveDoubling: return "recursive-doubling";
    case Algo::kRingRS: return "ring-rs";
    case Algo::kPairwise: return "pairwise";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view coll_kind_name(CollKind k) {
  switch (k) {
    case CollKind::kAllgather: return "allgather";
    case CollKind::kAlltoall: return "alltoall";
    case CollKind::kReduceScatter: return "reducescatter";
    case CollKind::kAllreduce: return "allreduce";
  }
  return "?";
}

/// Inverse of algo_name (including "auto"); nullopt for unknown names.
[[nodiscard]] std::optional<Algo> parse_algo(std::string_view name);

/// Concrete algorithms implemented for `kind`, the paper's algorithm first.
[[nodiscard]] const std::vector<Algo>& algos_for(CollKind kind);

/// The algorithm the paper's RCCE_comm uses for `kind` (what Algo-less call
/// sites and committed baselines run).
[[nodiscard]] Algo paper_algo(CollKind kind);

[[nodiscard]] bool algo_valid_for(CollKind kind, Algo algo);

/// The Selector: picks a concrete algorithm from (collective, n, p, prims).
/// Deterministic and purely analytic -- see DESIGN.md §12 for the cost
/// rationale behind each switch point; bench/tab_algo_select measures the
/// real crossovers against it.
[[nodiscard]] Algo select_algo(CollKind kind, std::size_t n, int p,
                               Prims prims);

// --- Algorithm kernels -------------------------------------------------
//
// Called by the public dispatchers in collectives.cpp after the coll_call
// overhead has been charged; they charge their own per-round overheads.
// Buffer contracts match the corresponding public collective.

/// Bruck Allgather: every rank keeps its own block at position 0 of a
/// scratch buffer; round d in {1,2,4,...} sends the first min(d, p-d)
/// blocks to (rank-d) while receiving from (rank+d); one final local
/// rotation restores rank-major order. ceil(log2 p) rounds for any p.
sim::Task<> allgather_bruck(Stack& stack, std::span<const double> contribution,
                            std::span<double> gathered);

/// Recursive-doubling Allgather working in place in `gathered`. Non-power-
/// of-two p folds the first 2r ranks (r = p - 2^floor(log2 p)) into r
/// representatives, doubles among the 2^floor(log2 p) virtual ranks, then
/// unfolds. Virtual rank order is monotone in original rank, so every
/// transfer is one contiguous span of `gathered`.
sim::Task<> allgather_recursive_doubling(Stack& stack,
                                         std::span<const double> contribution,
                                         std::span<double> gathered);

/// Recursive-halving ReduceScatter (fold + vector halving + unfold).
/// Returns the owned block index, which is `rank` (the ring variant owns
/// (rank+1) mod p instead -- callers must use the returned index).
sim::Task<int> reduce_scatter_recursive_halving(Stack& stack,
                                                std::span<const double> in,
                                                std::span<double> out,
                                                ReduceOp op,
                                                SplitPolicy policy);

/// Recursive-doubling Allreduce: full-vector exchange-and-reduce over
/// ceil(log2 p) rounds (plus fold/unfold for non-power-of-two p).
sim::Task<> allreduce_recursive_doubling(Stack& stack,
                                         std::span<const double> in,
                                         std::span<double> out, ReduceOp op);

/// Bruck Alltoall: local rotation, then round d in {1,2,4,...} forwards
/// every block whose index has bit d set to (rank+d), then one inverse
/// rotation. ceil(log2 p) rounds trading extra volume for round count.
sim::Task<> alltoall_bruck(Stack& stack, std::span<const double> sendbuf,
                           std::span<double> recvbuf);

}  // namespace scc::coll
