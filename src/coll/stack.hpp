// Per-core communication stack for the collectives, parameterized over the
// point-to-point primitive layer. Selecting the layer changes ONLY the
// synchronization structure and software overhead of each exchange -- the
// wire protocol and data results are identical -- which is exactly the
// comparison the paper makes.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <string_view>

#include "common/aligned.hpp"

#include "ircce/ircce.hpp"
#include "lwnb/lwnb.hpp"
#include "rcce/rcce.hpp"
#include "sim/task.hpp"

namespace scc::coll {

enum class Prims {
  kBlocking,     // RCCE send/recv with odd-even ordering (Fig. 4)
  kIrcce,        // iRCCE isend/irecv + wait_all (Fig. 5)
  kLightweight,  // the paper's single-slot non-blocking primitives
};

/// The three message-passing stacks, in the paper's presentation order.
/// Differential checkers iterate this: all three must produce element-wise
/// identical collective results for any legal schedule.
inline constexpr std::array<Prims, 3> kAllPrims = {
    Prims::kBlocking, Prims::kIrcce, Prims::kLightweight};

[[nodiscard]] constexpr std::string_view prims_name(Prims p) {
  switch (p) {
    case Prims::kBlocking: return "blocking";
    case Prims::kIrcce: return "ircce";
    case Prims::kLightweight: return "lightweight";
  }
  return "?";
}

class Stack {
 public:
  Stack(machine::CoreApi& api, const rcce::Layout& layout, Prims prims)
      : rcce_(api, layout), prims_(prims) {
    if (prims == Prims::kIrcce) ircce_.emplace(rcce_);
    if (prims == Prims::kLightweight) lwnb_.emplace(rcce_);
  }

  [[nodiscard]] int rank() const { return rcce_.rank(); }
  [[nodiscard]] int num_cores() const { return rcce_.num_cores(); }
  [[nodiscard]] Prims prims() const { return prims_; }
  [[nodiscard]] machine::CoreApi& api() { return rcce_.api(); }
  [[nodiscard]] rcce::Rcce& rcce() { return rcce_; }
  [[nodiscard]] const rcce::Layout& layout() const { return rcce_.layout(); }

  /// One ring/pairwise round: send `sbuf` to `dest` while receiving `rbuf`
  /// from `src`.
  ///  - blocking: odd cores receive first, even cores send first (the
  ///    deadlock-avoiding odd-even ordering whose barrier-like coupling the
  ///    paper identifies as optimization point A);
  ///  - iRCCE / lightweight: post both, then complete both.
  sim::Task<> exchange(std::span<const std::byte> sbuf, int dest,
                       std::span<std::byte> rbuf, int src);

  /// Pairwise variant for tournament rounds where send and receive involve
  /// the SAME partner. The blocking ordering is decided by rank comparison
  /// (the lower rank sends first), which is deadlock-free because the pairs
  /// of one round are disjoint; odd-even ordering is not safe here since a
  /// pair can have equal parity.
  sim::Task<> exchange_pair(std::span<const std::byte> sbuf,
                            std::span<std::byte> rbuf, int partner);

  /// Shift-pattern round (Bruck phases): send `sbuf` to (rank + dist) mod p
  /// while receiving `rbuf` from (rank - dist) mod p, dist != 0 mod p
  /// (negative distances allowed). Non-blocking layers post both and
  /// complete both. The blocking layer needs a distance-aware ordering:
  /// odd-even pairing is deadlock-free only when send and receive partners
  /// have opposite parity (p even and dist odd -- the ring case). For any
  /// other (p, dist) the shift permutation decomposes into gcd(p, dist)
  /// cycles whose members can share parity, so instead the smallest rank of
  /// each cycle (rank < gcd) receives first and everyone else sends first:
  /// the breaker drains its predecessor, completion propagates around each
  /// cycle, and no cycle of waiting sends can close. This serializes each
  /// cycle (the price the Selector charges Bruck on the blocking layer).
  sim::Task<> exchange_shift(std::span<const std::byte> sbuf,
                             std::span<std::byte> rbuf, int dist);

  /// One-directional transfer through the selected layer (tree phases of
  /// scatter/gather). Non-blocking layers post + immediately complete; the
  /// saving vs. blocking is their smaller call overhead.
  sim::Task<> send(std::span<const std::byte> data, int dest);
  sim::Task<> recv(std::span<std::byte> data, int src);

  sim::Task<> barrier() { return rcce_.barrier(); }

  /// Persistent per-core scratch for the collective algorithms. Temporaries
  /// must not be heap-allocated per call: the cache model keys on host
  /// addresses, and allocator address reuse would make hit/miss patterns --
  /// and therefore simulated time -- depend on the host heap layout.
  /// Slots never shrink; reuse within a run is deterministic.
  [[nodiscard]] std::span<double> scratch(std::size_t elems, int slot) {
    SCC_EXPECTS(slot >= 0 && slot < static_cast<int>(scratch_.size()));
    auto& buf = scratch_[static_cast<std::size_t>(slot)];
    if (buf.size() < elems) buf.resize(elems);
    return {buf.data(), elems};
  }

 private:
  rcce::Rcce rcce_;
  std::optional<ircce::Ircce> ircce_;
  std::optional<lwnb::Lwnb> lwnb_;
  Prims prims_;
  std::array<aligned_vector<double>, 3> scratch_;
};

}  // namespace scc::coll
