// Per-core communication stack for the collectives, parameterized over the
// point-to-point primitive layer. Selecting the layer changes ONLY the
// synchronization structure and software overhead of each exchange -- the
// wire protocol and data results are identical -- which is exactly the
// comparison the paper makes.
#pragma once

#include <array>
#include <coroutine>
#include <optional>
#include <span>
#include <string_view>

#include "common/aligned.hpp"

#include "ircce/ircce.hpp"
#include "lwnb/lwnb.hpp"
#include "rcce/rcce.hpp"
#include "sim/task.hpp"

namespace scc::coll {

enum class Prims {
  kBlocking,     // RCCE send/recv with odd-even ordering (Fig. 4)
  kIrcce,        // iRCCE isend/irecv + wait_all (Fig. 5)
  kLightweight,  // the paper's single-slot non-blocking primitives
};

/// The three message-passing stacks, in the paper's presentation order.
/// Differential checkers iterate this: all three must produce element-wise
/// identical collective results for any legal schedule.
inline constexpr std::array<Prims, 3> kAllPrims = {
    Prims::kBlocking, Prims::kIrcce, Prims::kLightweight};

[[nodiscard]] constexpr std::string_view prims_name(Prims p) {
  switch (p) {
    case Prims::kBlocking: return "blocking";
    case Prims::kIrcce: return "ircce";
    case Prims::kLightweight: return "lightweight";
  }
  return "?";
}

/// Cooperative yield hook for resumable collective schedules (coll/nbc.hpp).
/// When attached to a Stack, every round boundary inside the collective
/// kernels suspends the running schedule and symmetric-transfers control
/// back to the progress engine's stepper; detached (the default), round
/// boundaries are free no-ops, so blocking calls are bit-identical to a
/// build without the hook.
class Yielder {
 public:
  Yielder() = default;
  Yielder(const Yielder&) = delete;
  Yielder& operator=(const Yielder&) = delete;

  /// Called at a round boundary with the deepest suspended frame; returns
  /// the coroutine to transfer control to (the stepper's continuation).
  [[nodiscard]] virtual std::coroutine_handle<> on_round(
      std::coroutine_handle<> frame) noexcept = 0;

  /// Cooperative mode: set when the attached engine interleaves MORE than
  /// one lane on this core. A schedule step that blocks on a peer's flag
  /// then pins the whole core and can close a cross-lane wait cycle (core A
  /// stuck in lane 0 waiting on B while B is stuck in lane 1 waiting on A),
  /// so in cooperative mode the non-blocking layers must poll-and-yield at
  /// completion points instead of blocking mid-step. Single-lane engines
  /// leave this false and keep the blocking waits -- and their bit-exact
  /// blocking-API timing.
  [[nodiscard]] bool cooperative() const { return cooperative_; }
  void set_cooperative(bool on) { cooperative_ = on; }

 protected:
  ~Yielder() = default;

 private:
  bool cooperative_ = false;
};

class Stack {
 public:
  Stack(machine::CoreApi& api, const rcce::Layout& layout, Prims prims)
      : rcce_(api, layout), prims_(prims) {
    if (prims == Prims::kIrcce) ircce_.emplace(rcce_);
    if (prims == Prims::kLightweight) lwnb_.emplace(rcce_);
  }

  [[nodiscard]] int rank() const { return rcce_.rank(); }
  [[nodiscard]] int num_cores() const { return rcce_.num_cores(); }
  [[nodiscard]] Prims prims() const { return prims_; }
  [[nodiscard]] machine::CoreApi& api() { return rcce_.api(); }
  [[nodiscard]] rcce::Rcce& rcce() { return rcce_; }
  [[nodiscard]] const rcce::Layout& layout() const { return rcce_.layout(); }

  /// One ring/pairwise round: send `sbuf` to `dest` while receiving `rbuf`
  /// from `src`.
  ///  - blocking: odd cores receive first, even cores send first (the
  ///    deadlock-avoiding odd-even ordering whose barrier-like coupling the
  ///    paper identifies as optimization point A);
  ///  - iRCCE / lightweight: post both, then complete both.
  sim::Task<> exchange(std::span<const std::byte> sbuf, int dest,
                       std::span<std::byte> rbuf, int src);

  /// Pairwise variant for tournament rounds where send and receive involve
  /// the SAME partner. The blocking ordering is decided by rank comparison
  /// (the lower rank sends first), which is deadlock-free because the pairs
  /// of one round are disjoint; odd-even ordering is not safe here since a
  /// pair can have equal parity.
  sim::Task<> exchange_pair(std::span<const std::byte> sbuf,
                            std::span<std::byte> rbuf, int partner);

  /// Shift-pattern round (Bruck phases): send `sbuf` to (rank + dist) mod p
  /// while receiving `rbuf` from (rank - dist) mod p, dist != 0 mod p
  /// (negative distances allowed). Non-blocking layers post both and
  /// complete both. The blocking layer needs a distance-aware ordering:
  /// odd-even pairing is deadlock-free only when send and receive partners
  /// have opposite parity (p even and dist odd -- the ring case). For any
  /// other (p, dist) the shift permutation decomposes into gcd(p, dist)
  /// cycles whose members can share parity, so instead the smallest rank of
  /// each cycle (rank < gcd) receives first and everyone else sends first:
  /// the breaker drains its predecessor, completion propagates around each
  /// cycle, and no cycle of waiting sends can close. This serializes each
  /// cycle (the price the Selector charges Bruck on the blocking layer).
  sim::Task<> exchange_shift(std::span<const std::byte> sbuf,
                             std::span<std::byte> rbuf, int dist);

  /// One-directional transfer through the selected layer (tree phases of
  /// scatter/gather). Non-blocking layers post + immediately complete; the
  /// saving vs. blocking is their smaller call overhead.
  sim::Task<> send(std::span<const std::byte> data, int dest);
  sim::Task<> recv(std::span<std::byte> data, int src);

  sim::Task<> barrier() { return rcce_.barrier(); }

  /// Round-boundary awaitable. The collective kernels `co_await` this once
  /// per communication round: with no yielder attached it is ready
  /// immediately (zero events, zero simulated time -- the blocking path is
  /// unchanged); with one attached it suspends the schedule so the
  /// non-blocking progress engine can interleave other work (DESIGN.md §17).
  struct RoundGate {
    Yielder* yielder;
    [[nodiscard]] bool await_ready() const noexcept {
      return yielder == nullptr;
    }
    [[nodiscard]] std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> frame) const noexcept {
      return yielder->on_round(frame);
    }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] RoundGate round_gate() const { return RoundGate{yielder_}; }
  void set_yielder(Yielder* y) { yielder_ = y; }
  [[nodiscard]] Yielder* yielder() const { return yielder_; }

  /// Persistent per-core scratch for the collective algorithms. Temporaries
  /// must not be heap-allocated per call: the cache model keys on host
  /// addresses, and allocator address reuse would make hit/miss patterns --
  /// and therefore simulated time -- depend on the host heap layout.
  /// Slots never shrink; reuse within a run is deterministic.
  [[nodiscard]] std::span<double> scratch(std::size_t elems, int slot) {
    SCC_EXPECTS(slot >= 0 && slot < static_cast<int>(scratch_.size()));
    auto& buf = scratch_[static_cast<std::size_t>(slot)];
    if (buf.size() < elems) buf.resize(elems);
    return {buf.data(), elems};
  }

 private:
  /// True when completion points must poll-and-yield (multi-lane engine).
  [[nodiscard]] bool cooperative() const {
    return yielder_ != nullptr && yielder_->cooperative();
  }
  /// Poll-and-yield completion of iRCCE requests: test each id, and while
  /// any is incomplete charge one poll tick and yield the schedule so the
  /// engine's other lanes keep making progress. Ids are tested in the order
  /// given (receives first mirrors wait_all's completion policy).
  sim::Task<> coop_wait_ircce(std::span<const ircce::RequestId> ids);
  /// Same poll-and-yield discipline over the lightweight layer's slots.
  sim::Task<> coop_wait_lwnb(bool pending_recv, bool pending_send);

  rcce::Rcce rcce_;
  std::optional<ircce::Ircce> ircce_;
  std::optional<lwnb::Lwnb> lwnb_;
  Prims prims_;
  Yielder* yielder_ = nullptr;
  std::array<aligned_vector<double>, 3> scratch_;
};

}  // namespace scc::coll
