#include "coll/mpb_allreduce.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/aligned.hpp"

namespace scc::coll {

namespace {

/// Sequence values cycle through 1..255; 0 is reserved as the flags' reset
/// state so a wait can never be satisfied by a never-written flag.
std::uint8_t next_seq(std::uint8_t& counter) {
  counter = static_cast<std::uint8_t>(counter % 255 + 1);
  return counter;
}

void vec_to_window(std::span<const double> in, std::span<std::byte> window) {
  std::memcpy(window.data(), in.data(), in.size_bytes());
}

}  // namespace

MpbAllreduce::BufferGeometry MpbAllreduce::geometry(
    const std::vector<Block>& blocks) const {
  BufferGeometry g;
  for (const Block& b : blocks) g.max_block = std::max(g.max_block, b.count);
  const std::size_t raw = g.max_block * sizeof(double);
  g.buf_bytes = (raw + mem::kCacheLineBytes - 1) / mem::kCacheLineBytes *
                mem::kCacheLineBytes;
  SCC_EXPECTS(2 * g.buf_bytes <= layout_->payload_bytes());
  return g;
}

sim::Task<> MpbAllreduce::acquire_local_buffer(int buf) {
  if (writes_[static_cast<std::size_t>(buf)]++ == 0) co_return;
  const auto expected = next_seq(free_in_[static_cast<std::size_t>(buf)]);
  co_await api_->flag_wait(layout_->mpb_free_flag(api_->rank(), buf),
                           expected);
}

sim::Task<> MpbAllreduce::publish_filled(int buf) {
  const int right = (api_->rank() + 1) % layout_->num_cores();
  const auto seq = next_seq(filled_out_[static_cast<std::size_t>(buf)]);
  co_await api_->flag_set(layout_->mpb_filled_flag(right, buf), seq);
}

sim::Task<> MpbAllreduce::await_remote_filled(int buf) {
  const auto expected = next_seq(filled_in_[static_cast<std::size_t>(buf)]);
  co_await api_->flag_wait(layout_->mpb_filled_flag(api_->rank(), buf),
                           expected);
}

sim::Task<> MpbAllreduce::release_remote_buffer(int buf) {
  const int p = layout_->num_cores();
  const int left = (api_->rank() + p - 1) % p;
  const auto seq = next_seq(free_out_[static_cast<std::size_t>(buf)]);
  co_await api_->flag_set(layout_->mpb_free_flag(left, buf), seq);
}

sim::Task<> MpbAllreduce::run(std::span<const double> in,
                              std::span<double> out, rcce::ReduceOp op,
                              SplitPolicy policy) {
  auto& api = *api_;
  const int p = layout_->num_cores();
  const int rank = api.rank();
  const int left = (rank + p - 1) % p;
  SCC_EXPECTS(in.size() == out.size());
  co_await api.overhead(api.cost().sw.coll_call);
  if (p == 1) {
    std::copy(in.begin(), in.end(), out.begin());
    co_await api.priv_read(in.data(), in.size_bytes());
    co_await api.priv_write(out.data(), out.size_bytes());
    co_return;
  }
  const auto blocks = split_blocks(in.size(), p, policy);
  const BufferGeometry g = geometry(blocks);
  if (scratch_.size() < g.max_block) scratch_.resize(g.max_block);
  std::span<double> scratch(scratch_.data(), g.max_block);

  // --- prime: stage my block `rank` into local buffer 0 -----------------
  {
    co_await api.overhead(api.cost().sw.coll_round);
    const Block& b = blocks[static_cast<std::size_t>(rank)];
    co_await acquire_local_buffer(0);
    co_await api.priv_read(in.data() + b.offset, b.count * sizeof(double));
    co_await api.mpb_charge(rank, b.count * sizeof(double), /*is_read=*/false);
    vec_to_window(in.subspan(b.offset, b.count),
                  api.mpb_window(buf_addr(rank, 0, g), b.count * sizeof(double)));
    co_await publish_filled(0);
  }

  // --- ReduceScatter rounds (Fig. 8) -------------------------------------
  for (int round = 1; round <= p - 1; ++round) {
    co_await api.overhead(api.cost().sw.coll_round + api.cost().sw.mpb_round);
    const int cur = round % 2;
    const int prev = (round - 1) % 2;
    const Block& b = blocks[static_cast<std::size_t>((rank - round + p) % p)];
    co_await await_remote_filled(prev);
    co_await acquire_local_buffer(cur);
    // Operand 1 streams straight from the left neighbour's MPB, word by
    // word into the FP pipeline (no optimized burst memcpy on this path).
    // The fused read routes the copy through the neighbour's partition
    // when the ring crosses a slab boundary (serial: bit-identical to the
    // old word-charge + window idiom).
    co_await api.mpb_word_get(
        buf_addr(left, prev, g),
        std::as_writable_bytes(std::span<double>(scratch.data(), b.count)));
    // ... operand 2 is the local input vector's block ...
    co_await api.priv_read(in.data() + b.offset, b.count * sizeof(double));
    {
      std::span<double> acc(scratch.data(), b.count);
      std::span<const double> local = in.subspan(b.offset, b.count);
      switch (op) {
        case rcce::ReduceOp::kSum:
          for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += local[i];
          break;
        case rcce::ReduceOp::kMax:
          for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] = std::max(acc[i], local[i]);
          break;
        case rcce::ReduceOp::kMin:
          for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] = std::min(acc[i], local[i]);
          break;
        case rcce::ReduceOp::kProd:
          for (std::size_t i = 0; i < acc.size(); ++i) acc[i] *= local[i];
          break;
      }
    }
    co_await api.compute(b.count * api.cost().sw.reduce_cycles_per_element);
    // ... and the result lands directly in the local MPB, word by word
    // (the expensive step while the arbiter-bug workaround is active).
    co_await api.mpb_word_charge(rank, b.count * sizeof(double),
                                 /*is_read=*/false);
    vec_to_window(std::span<const double>(scratch.data(), b.count),
                  api.mpb_window(buf_addr(rank, cur, g),
                                 b.count * sizeof(double)));
    if (round == p - 1) {
      // Final round: this is my fully-reduced block; also store it into the
      // private result vector.
      co_await api.priv_write(out.data() + b.offset, b.count * sizeof(double));
      std::copy_n(scratch.data(), b.count, out.data() + b.offset);
    }
    co_await release_remote_buffer(prev);
    co_await publish_filled(cur);
  }

  // --- Allgather rounds: forward reduced blocks through the MPBs ---------
  for (int round = 1; round <= p - 1; ++round) {
    co_await api.overhead(api.cost().sw.coll_round + api.cost().sw.mpb_round);
    const int g_round = p - 1 + round;
    const int cur = g_round % 2;
    const int prev = (g_round - 1) % 2;
    const Block& b =
        blocks[static_cast<std::size_t>(((rank - round + 1) % p + p) % p)];
    co_await await_remote_filled(prev);
    co_await api.mpb_word_get(
        buf_addr(left, prev, g),
        std::as_writable_bytes(std::span<double>(scratch.data(), b.count)));
    co_await api.priv_write(out.data() + b.offset, b.count * sizeof(double));
    std::copy_n(scratch.data(), b.count, out.data() + b.offset);
    if (round < p - 1) {
      co_await acquire_local_buffer(cur);
      co_await api.mpb_word_charge(rank, b.count * sizeof(double),
                                   /*is_read=*/false);
      vec_to_window(std::span<const double>(scratch.data(), b.count),
                    api.mpb_window(buf_addr(rank, cur, g),
                                   b.count * sizeof(double)));
      co_await publish_filled(cur);
    }
    co_await release_remote_buffer(prev);
  }
}

}  // namespace scc::coll
