#include "coll/stack.hpp"

#include <array>
#include <numeric>

namespace scc::coll {

namespace {
/// Probe spacing (core cycles) of cooperative poll-and-yield completion
/// loops; matches the iRCCE wildcard poll spacing so multi-lane progress
/// costs the same per probe as any other busy-poll in the model.
constexpr std::uint64_t kCoopPollCycles = 300;
}  // namespace

sim::Task<> Stack::coop_wait_ircce(std::span<const ircce::RequestId> ids) {
  auto& api = rcce_.api();
  for (;;) {
    bool all_done = true;
    for (const ircce::RequestId id : ids) {
      if (!co_await ircce_->test(id)) all_done = false;
    }
    if (all_done) co_return;
    co_await api.charge(machine::Phase::kFlagWait,
                        api.cost().hw.core_clock().cycles(kCoopPollCycles));
    co_await round_gate();
  }
}

sim::Task<> Stack::coop_wait_lwnb(bool pending_recv, bool pending_send) {
  auto& api = rcce_.api();
  for (;;) {
    if (pending_recv && co_await lwnb_->test_recv()) pending_recv = false;
    if (pending_send && co_await lwnb_->test_send()) pending_send = false;
    if (!pending_recv && !pending_send) co_return;
    co_await api.charge(machine::Phase::kFlagWait,
                        api.cost().hw.core_clock().cycles(kCoopPollCycles));
    co_await round_gate();
  }
}

sim::Task<> Stack::exchange(std::span<const std::byte> sbuf, int dest,
                            std::span<std::byte> rbuf, int src) {
  switch (prims_) {
    case Prims::kBlocking: {
      // Odd-even ordering (paper Fig. 4): odd IDs receive first.
      if (rank() % 2 == 1) {
        co_await rcce_.recv(rbuf, src);
        co_await rcce_.send(sbuf, dest);
      } else {
        co_await rcce_.send(sbuf, dest);
        co_await rcce_.recv(rbuf, src);
      }
      co_return;
    }
    case Prims::kIrcce: {
      const auto sid = co_await ircce_->isend(sbuf, dest);
      const auto rid = co_await ircce_->irecv(rbuf, src);
      // Posted-but-not-completed is the overlap window the non-blocking
      // layers exist for: under a progress engine, yield here so other
      // in-flight schedules advance while the peer drains the post.
      co_await round_gate();
      // Cooperative single-chunk completion polls-and-yields so the other
      // lanes of a multi-lane engine keep advancing; oversized messages
      // fall back to the interleaved blocking path (wait_all's exchange
      // fast path), which cannot yield mid-message.
      if (cooperative() && sbuf.size() <= layout().chunk_bytes() &&
          rbuf.size() <= layout().chunk_bytes()) {
        const std::array<ircce::RequestId, 2> ids{rid, sid};
        co_await coop_wait_ircce(ids);
      } else {
        const std::array<ircce::RequestId, 2> ids{sid, rid};
        co_await ircce_->wait_all(ids);
      }
      co_return;
    }
    case Prims::kLightweight: {
      co_await lwnb_->isend(sbuf, dest);
      co_await lwnb_->irecv(rbuf, src);
      co_await round_gate();
      if (cooperative() && sbuf.size() <= layout().chunk_bytes() &&
          rbuf.size() <= layout().chunk_bytes()) {
        co_await coop_wait_lwnb(true, true);
      } else {
        co_await lwnb_->wait_both();
      }
      co_return;
    }
  }
}

sim::Task<> Stack::exchange_pair(std::span<const std::byte> sbuf,
                                 std::span<std::byte> rbuf, int partner) {
  if (prims_ != Prims::kBlocking) {
    co_await exchange(sbuf, partner, rbuf, partner);
    co_return;
  }
  if (rank() < partner) {
    co_await rcce_.send(sbuf, partner);
    co_await rcce_.recv(rbuf, partner);
  } else {
    co_await rcce_.recv(rbuf, partner);
    co_await rcce_.send(sbuf, partner);
  }
}

sim::Task<> Stack::exchange_shift(std::span<const std::byte> sbuf,
                                  std::span<std::byte> rbuf, int dist) {
  const int p = num_cores();
  const int d = (dist % p + p) % p;
  SCC_EXPECTS(d != 0);
  const int dest = (rank() + d) % p;
  const int src = (rank() - d + p) % p;
  // Odd-even ordering is safe exactly when dest and src always differ in
  // parity from rank (p even, d odd); exchange() also covers all
  // non-blocking layers.
  if (prims_ != Prims::kBlocking || (p % 2 == 0 && d % 2 == 1)) {
    co_await exchange(sbuf, dest, rbuf, src);
    co_return;
  }
  // Cycle-breaker ordering (see stack.hpp): the minimum of each shift
  // cycle -- the congruence class mod gcd(p, d) -- receives first.
  if (rank() < std::gcd(p, d)) {
    co_await rcce_.recv(rbuf, src);
    co_await rcce_.send(sbuf, dest);
  } else {
    co_await rcce_.send(sbuf, dest);
    co_await rcce_.recv(rbuf, src);
  }
}

sim::Task<> Stack::send(std::span<const std::byte> data, int dest) {
  switch (prims_) {
    case Prims::kBlocking:
      co_await rcce_.send(data, dest);
      co_return;
    case Prims::kIrcce: {
      const auto sid = co_await ircce_->isend(data, dest);
      co_await round_gate();
      if (cooperative() && data.size() <= layout().chunk_bytes()) {
        const std::array<ircce::RequestId, 1> ids{sid};
        co_await coop_wait_ircce(ids);
      } else {
        co_await ircce_->wait(sid);
      }
      co_return;
    }
    case Prims::kLightweight:
      co_await lwnb_->isend(data, dest);
      co_await round_gate();
      if (cooperative() && data.size() <= layout().chunk_bytes()) {
        co_await coop_wait_lwnb(false, true);
      } else {
        co_await lwnb_->wait_send();
      }
      co_return;
  }
}

sim::Task<> Stack::recv(std::span<std::byte> data, int src) {
  switch (prims_) {
    case Prims::kBlocking:
      co_await rcce_.recv(data, src);
      co_return;
    case Prims::kIrcce: {
      const auto rid = co_await ircce_->irecv(data, src);
      co_await round_gate();
      if (cooperative() && data.size() <= layout().chunk_bytes()) {
        const std::array<ircce::RequestId, 1> ids{rid};
        co_await coop_wait_ircce(ids);
      } else {
        co_await ircce_->wait(rid);
      }
      co_return;
    }
    case Prims::kLightweight:
      co_await lwnb_->irecv(data, src);
      co_await round_gate();
      if (cooperative() && data.size() <= layout().chunk_bytes()) {
        co_await coop_wait_lwnb(true, false);
      } else {
        co_await lwnb_->wait_recv();
      }
      co_return;
  }
}

}  // namespace scc::coll
