// Vector-to-block splitting policies (the paper's Section IV-C).
//
// Ring-based collectives split an n-element vector into p blocks that form
// the unit of communication and computation. RCCE_comm's standard policy
// makes every block floor(n/p) elements and glues the entire remainder
// onto block 0 -- up to 5.3x larger than the rest (Fig. 6a), which stalls
// every other core for most of each round. The balanced policy gives the
// first (n mod p) blocks one extra element, bounding the imbalance at one
// element (<= 1.1x for the paper's sizes, Fig. 6b).
#pragma once

#include <cstddef>
#include <vector>

namespace scc::coll {

enum class SplitPolicy {
  kStandard,  // RCCE_comm: block 0 absorbs the whole remainder
  kBalanced   // paper: first (n mod p) blocks get one extra element
};

struct Block {
  std::size_t offset = 0;  // first element index
  std::size_t count = 0;   // number of elements
};

/// Partition [0, n) into p contiguous blocks under `policy`.
/// Invariants (tested): blocks tile [0, n) exactly, in order; balanced
/// blocks differ by at most one element.
[[nodiscard]] std::vector<Block> split_blocks(std::size_t n, int p,
                                              SplitPolicy policy);

/// max(count)/min(count) over nonzero-size partitions; 1.0 when perfectly
/// even. Used to regenerate the Fig. 6 ratio table.
[[nodiscard]] double imbalance_ratio(const std::vector<Block>& blocks);

}  // namespace scc::coll
